package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"crocus/internal/isle"
	"crocus/internal/obs"
	"crocus/internal/sched"
	"crocus/internal/smt"
	"crocus/internal/vcache"
)

// Outcome classifies a verification attempt, mirroring §3.2's three
// outcomes plus resource exhaustion (the paper's §4.1 timeouts) and
// contained engine faults.
type Outcome int

// Verification outcomes.
const (
	OutcomeSuccess      Outcome = iota // the rule is verified
	OutcomeInapplicable                // the rule never matches this instantiation
	OutcomeFailure                     // counterexample found
	OutcomeTimeout                     // solver resource limit reached
	OutcomeError                       // contained engine fault (panic or pipeline error)
)

func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeInapplicable:
		return "inapplicable"
	case OutcomeFailure:
		return "failure"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// VCContext gives custom verification conditions access to the elaborated
// rule: the builder, both results, and the rule's variable values.
type VCContext struct {
	B         *smt.Builder
	LHSResult smt.TermID
	RHSResult smt.TermID
	// Var returns the SMT term bound to an ISLE rule variable.
	Var func(name string) (smt.TermID, bool)
}

// CustomVC replaces or augments the default bitvector-equality condition
// for rules whose context intentionally breaks strict equivalence (§3.2.2,
// e.g. comparison rules producing flags and a condition code).
type CustomVC struct {
	// Condition, when non-nil, replaces result_LHS = result_RHS in Eq. 3.
	Condition func(ctx *VCContext) (smt.TermID, error)
	// Assumptions, when non-nil, contributes the A_n of Eq. 3 (e.g.
	// encodings of ISLE priority semantics).
	Assumptions func(ctx *VCContext) ([]smt.TermID, error)
}

// Options configures a Verifier.
type Options struct {
	// Timeout bounds each SMT query; zero means no limit. Queries that
	// exceed it yield OutcomeTimeout (the paper's mul/div/popcnt cases).
	Timeout time.Duration
	// PropagationBudget optionally bounds SAT work deterministically
	// (useful in tests); 0 = unlimited.
	PropagationBudget int64
	// RetryBudgets is the timeout-escalation ladder: a unit that exhausts
	// the base PropagationBudget (OutcomeTimeout) is re-solved at each
	// listed budget in turn until it decides or the ladder is exhausted.
	// Rungs should ascend; a rung not more generous than the previous
	// attempt's budget is skipped, and a 0 rung means unlimited (final).
	// Each attempt re-derives a fresh Options.Timeout deadline and its SAT
	// statistics accumulate into the unit's totals; the final attempt's
	// deadline and budget are what the vcache entry records, so staleness
	// logic keeps working across runs. The ladder only engages when the
	// base PropagationBudget is finite (> 0).
	RetryBudgets []int64
	// DistinctModels enables the optional §3.2.1 check that at least two
	// distinct input assignments match the rule.
	DistinctModels bool
	// Widths is the candidate domain for type variables the two inference
	// passes cannot pin (default 8,16,32,64).
	Widths []int
	// Custom maps rule names to custom verification conditions.
	Custom map[string]*CustomVC
	// Parallelism is the number of workers VerifyAll schedules
	// verification units onto (0 or 1 = sequential). The unit of
	// scheduling is one (rule, type instantiation) solve, distributed
	// through a work-stealing pool (internal/sched), so one timeout-tail
	// rule no longer serializes a sweep; results keep source order
	// regardless of execution order. The CLIs and the daemon normalize
	// values <= 0 to runtime.NumCPU() before constructing Options.
	Parallelism int
	// CacheDir enables the incremental-verification result cache
	// (internal/vcache): verification units whose content fingerprint is
	// already stored are replayed instead of re-solved, and fresh results
	// are persisted under this directory. Empty = no caching.
	CacheDir string
	// Cache injects an already-open result cache, e.g. to share one store
	// between several verifiers in a run. Takes precedence over CacheDir.
	Cache *vcache.Cache
	// Journal, when set together with a cache, makes the sweep
	// crash-resumable: every completed unit's fingerprint is recorded
	// (after its outcome is durable in the cache), and a unit the journal
	// already holds is replayed from the cache outright — including cached
	// timeouts the staleness policy would otherwise re-escalate. A killed
	// process reopened on the same journal resumes where it died. The
	// journal's lifetime belongs to the caller (the CLIs open it from
	// -journal and Complete/Close it at sweep end).
	Journal *vcache.Journal
	// FreshSolvers disables the incremental solve pipeline: every query
	// gets its own builder, blaster, and SAT solver, as in the original
	// per-query path. Verdicts are identical either way (the differential
	// tests assert this); the fresh path is the slower reference
	// implementation, kept for A/B benchmarking and diagnosis.
	FreshSolvers bool
	// Scheduler injects a shared work-stealing pool to run verification
	// units on instead of a per-sweep transient pool — long-running
	// hosts (crocus-serve) size one pool at admission capacity and
	// schedule every request's units onto it, so -max-inflight admission
	// and unit scheduling share a single queue. With a Scheduler set,
	// VerifyRuleContext also schedules (per-unit fault containment:
	// failing units degrade to OutcomeError instead of returning an
	// error). The pool's lifetime belongs to the caller.
	Scheduler *sched.Pool
	// NoInprocess disables CDCL inprocessing (bounded variable
	// elimination, subsumption/self-subsuming resolution, vivification
	// between restarts) in the SAT solver. Verdicts must be identical
	// with it on or off; the knob exists for A/B diagnosis and the
	// differential matrix.
	NoInprocess bool
	// NoStructHash disables structural hashing (gate-level node sharing)
	// in the bit-blaster. Same contract: verdicts never change, clause
	// and variable counts do.
	NoStructHash bool
	// ShardIndex/ShardCount enable sharded multi-process sweeps: when
	// ShardCount > 1, a verification unit is solved only if its vcache
	// content fingerprint maps to ShardIndex (units are partitioned by
	// vcache.Shard, which is stable across processes because the
	// fingerprint is location-independent). Foreign units are marked
	// InstOutcome.Skipped and dropped from results; rules whose every
	// unit is foreign are omitted from sweeps. Units that produce no
	// fingerprint (zero type assignments) are solved by every shard —
	// they cost only monomorphization. Run one process per shard with
	// separate CacheDirs, union them with vcache.Merge (crocus
	// -cache-merge), and replay the full corpus against the merged cache
	// to get verdicts byte-identical to a single-process run.
	ShardIndex int
	ShardCount int
}

// Verifier verifies the rules of an ISLE program against their
// annotations.
type Verifier struct {
	Prog *isle.Program
	Opts Options

	cacheOnce sync.Once
	cache     *vcache.Cache
	cacheErr  error
}

// New creates a Verifier over a typechecked program.
func New(prog *isle.Program, opts Options) *Verifier {
	return &Verifier{Prog: prog, Opts: opts}
}

// Counterexample is a failing model lifted back to ISLE surface syntax
// (§3.3: "Crocus lifts counterexamples from the SMT model back into ISLE
// syntax to make debugging easier").
type Counterexample struct {
	Inputs   map[string]smt.Value // ISLE LHS variables
	LHSValue smt.Value
	RHSValue smt.Value
	Rendered string // paper-style annotated rule text
}

// SolverStats are cumulative SAT search statistics across a verification
// unit's queries (applicability, distinctness, equivalence). With the
// incremental pipeline the propagation/conflict/decision counts are
// per-query deltas summed over the unit's queries, so they remain
// comparable to the fresh-solver path.
type SolverStats struct {
	Propagations int64
	Conflicts    int64
	Decisions    int64
	// Restarts counts CDCL restarts across the unit's queries; the
	// rule-hardness profiler uses it to separate "search thrashing"
	// timeouts from steady propagation grinds.
	Restarts int64
	// Queries is the number of SMT queries issued.
	Queries int64
	// Inprocessing / structural-hashing work across the unit's queries:
	// variables removed by bounded variable elimination, clauses deleted
	// by subsumption, clauses shortened by vivification, and gate
	// allocations avoided by structural hashing.
	ElimVars         int64
	Subsumed         int64
	Vivified         int64
	StructHashMerged int64
}

// Add accumulates other into s.
func (s *SolverStats) Add(other SolverStats) {
	s.Propagations += other.Propagations
	s.Conflicts += other.Conflicts
	s.Decisions += other.Decisions
	s.Restarts += other.Restarts
	s.Queries += other.Queries
	s.ElimVars += other.ElimVars
	s.Subsumed += other.Subsumed
	s.Vivified += other.Vivified
	s.StructHashMerged += other.StructHashMerged
}

func (s *SolverStats) addResult(r smt.Result) {
	s.Propagations += r.Propagations
	s.Conflicts += r.Conflicts
	s.Decisions += r.Decisions
	s.Restarts += r.Restarts
	s.Queries++
	s.ElimVars += r.ElimVars
	s.Subsumed += r.Subsumed
	s.Vivified += r.Vivified
	s.StructHashMerged += r.StructHashMerged
}

// String renders the stats in the -stats flag's layout.
func (s SolverStats) String() string {
	out := fmt.Sprintf("props=%d conflicts=%d decisions=%d queries=%d",
		s.Propagations, s.Conflicts, s.Decisions, s.Queries)
	if s.ElimVars != 0 || s.Subsumed != 0 || s.Vivified != 0 {
		out += fmt.Sprintf(" elim=%d subsumed=%d vivified=%d",
			s.ElimVars, s.Subsumed, s.Vivified)
	}
	if s.StructHashMerged != 0 {
		out += fmt.Sprintf(" merged=%d", s.StructHashMerged)
	}
	return out
}

// InstOutcome is the verification result for one (rule, type
// instantiation) pair — one row contribution to Table 1.
type InstOutcome struct {
	Sig            *isle.Sig
	Outcome        Outcome
	Counterexample *Counterexample
	// DistinctInputs is set by the optional distinct-models check: false
	// means the rule admits exactly one matching input assignment
	// (the §4.4.2 "rule never fires meaningfully" signal).
	DistinctInputs *bool
	Duration       time.Duration
	// Assignments is how many type assignments monomorphization produced.
	Assignments int
	// Stats are the unit's cumulative SAT statistics (replayed from the
	// cache on a hit).
	Stats SolverStats
	// Cached reports that this outcome was served from the result cache
	// without solving.
	Cached bool
	// Escalations counts the timeout-escalation retries the unit consumed
	// (0 = decided, or still timed out, at the base budget).
	Escalations int
	// Err carries the contained fault for OutcomeError outcomes —
	// typically a *PanicError diagnostics bundle.
	Err error
	// Skipped marks a unit a sharded run (Options.ShardCount > 1) does
	// not own: another shard solves it. Skipped outcomes are dropped
	// from RuleResults; the field only surfaces through direct
	// VerifyInstantiation calls.
	Skipped bool
}

// RuleResult aggregates the per-instantiation outcomes of one rule.
type RuleResult struct {
	Rule  *isle.Rule
	Insts []InstOutcome
	// RetriedFresh reports that the incremental-session attempt faulted
	// and this result came from the fresh-solver reference retry.
	RetriedFresh bool
}

// Outcome summarizes the rule across instantiations: failure dominates,
// then contained error, then timeout, then success; a rule with no
// applicable instantiation is inapplicable.
func (rr *RuleResult) Outcome() Outcome {
	agg := OutcomeInapplicable
	for _, io := range rr.Insts {
		switch io.Outcome {
		case OutcomeFailure:
			return OutcomeFailure
		case OutcomeError:
			agg = OutcomeError
		case OutcomeTimeout:
			if agg != OutcomeError {
				agg = OutcomeTimeout
			}
		case OutcomeSuccess:
			if agg != OutcomeTimeout && agg != OutcomeError {
				agg = OutcomeSuccess
			}
		}
	}
	return agg
}

// AllSuccess reports whether every instantiation that applies verified.
func (rr *RuleResult) AllSuccess() bool {
	any := false
	for _, io := range rr.Insts {
		switch io.Outcome {
		case OutcomeFailure, OutcomeTimeout, OutcomeError:
			return false
		case OutcomeSuccess:
			any = true
		}
	}
	return any
}

// Sigs returns the type instantiations to verify rule against: the
// registered instantiations of its instruction root, or a single
// unconstrained instantiation when the root is not instantiated (mid-end
// rules).
func (v *Verifier) Sigs(rule *isle.Rule) []*isle.Sig {
	ir := v.Prog.FindIRTerm(rule.LHS)
	if ir == nil {
		return []*isle.Sig{nil}
	}
	sigs := v.Prog.Insts[ir.Name]
	out := make([]*isle.Sig, len(sigs))
	for i := range sigs {
		out[i] = &sigs[i]
	}
	return out
}

// ruleSession bundles the shared term builder and the incremental SMT
// session all verification units of one rule solve through. The
// monomorphized instantiations of a rule share most of their term
// structure; one session means that structure is interned, simplified,
// and bit-blasted once, and the SAT solver carries its learned clauses
// from one width's queries to the next. Each query is isolated behind
// its own activation literal (see smt.Session). A ruleSession is owned
// by a single goroutine.
type ruleSession struct {
	b    *smt.Builder
	sess *smt.Session
}

func newRuleSession() *ruleSession {
	b := smt.NewBuilder()
	return &ruleSession{b: b, sess: smt.NewSession(b)}
}

// VerifyRule verifies one rule across all of its type instantiations.
// The instantiations share one incremental session (unless
// Options.FreshSolvers). Equivalent to VerifyRuleContext with a
// background context.
func (v *Verifier) VerifyRule(rule *isle.Rule) (*RuleResult, error) {
	return v.VerifyRuleContext(context.Background(), rule)
}

// VerifyRuleContext is VerifyRule under a cancellation context, with
// per-rule fault containment: a panic anywhere in the
// elaborate/blast/solve pipeline is recovered, the rule is retried once
// through the fresh-solver reference path (unless it already ran
// fresh), and a persisting panic is reported as a RuleResult with
// OutcomeError carrying a *PanicError diagnostics bundle instead of
// crashing the process. Non-panic errors (malformed corpus, missing
// annotations) are still returned as errors. A canceled context returns
// ctx.Err() with no result; nothing partial is cached.
func (v *Verifier) VerifyRuleContext(ctx context.Context, rule *isle.Rule) (*RuleResult, error) {
	if sc := obs.Get(ctx); sc != nil {
		// Scope every span under this rule's name so the phase-breakdown
		// table attributes pipeline time per rule.
		ctx = obs.WithScope(ctx, rule.Name)
		sp := obs.Start(ctx, obs.PhaseRule)
		defer sp.End()
	}
	if v.Opts.Scheduler != nil {
		// Scheduled path: the rule's units run on the shared pool with
		// per-unit containment (a faulting unit degrades to OutcomeError
		// instead of surfacing as an error), results in sig order.
		rr := v.verifyRuleScheduled(ctx, v.Opts.Scheduler, rule)
		if rr == nil {
			return nil, ctx.Err()
		}
		return rr, nil
	}
	rr, err := v.verifyRuleAttempt(ctx, rule, v.Opts.FreshSolvers)
	if err == nil {
		return rr, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	fault := err
	if !v.Opts.FreshSolvers {
		// Fault under the incremental pipeline: retry once through the
		// fresh-solver reference path before giving up.
		rr2, err2 := v.verifyRuleAttempt(ctx, rule, true)
		if err2 == nil {
			rr2.RetriedFresh = true
			return rr2, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Keep whichever fault carries panic diagnostics.
		if !isPanicErr(fault) && isPanicErr(err2) {
			fault = err2
		}
	}
	if isPanicErr(fault) {
		return erroredResult(rule, fault), nil
	}
	return nil, fault
}

// verifyRuleAttempt runs one full verification attempt over the rule's
// instantiations under the given pipeline, converting any panic in the
// monomorphize/elaborate/blast/solve stack into a *PanicError.
func (v *Verifier) verifyRuleAttempt(ctx context.Context, rule *isle.Rule, fresh bool) (rr *RuleResult, err error) {
	var cur *isle.Sig
	defer func() {
		if r := recover(); r != nil {
			rr, err = nil, newPanicError(rule, cur, r, fresh)
		}
	}()
	rr = &RuleResult{Rule: rule}
	var rs *ruleSession
	if !fresh {
		rs = newRuleSession()
	}
	for _, sig := range v.Sigs(rule) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		cur = sig
		io, err := v.verifyInstantiation(ctx, rs, rule, sig)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rule, err)
		}
		if io.Skipped {
			continue // another shard owns this unit
		}
		rr.Insts = append(rr.Insts, *io)
	}
	return rr, nil
}

// VerifyRuleContained verifies one rule with sweep-grade fault
// isolation: panics AND plain errors degrade to a RuleResult with
// OutcomeError so the caller's loop survives poisoned inputs. It
// returns nil only when the context was canceled before the rule
// completed. Exported for long-running hosts (crocus-serve) that keep a
// resident Verifier and dispatch individual rules per request.
func (v *Verifier) VerifyRuleContained(ctx context.Context, rule *isle.Rule) *RuleResult {
	return v.verifyRuleContained(ctx, rule)
}

// verifyRuleContained verifies one rule for a sweep: panics AND plain
// errors degrade to an OutcomeError result so the sweep survives. It
// returns nil only when the context was canceled before the rule
// completed.
func (v *Verifier) verifyRuleContained(ctx context.Context, rule *isle.Rule) *RuleResult {
	rr, err := v.VerifyRuleContext(ctx, rule)
	if err == nil {
		return rr
	}
	if ctx.Err() != nil {
		return nil
	}
	return erroredResult(rule, err)
}

// newSession returns the rule-level session for the configured pipeline:
// nil under FreshSolvers (every query then builds its own solver).
func (v *Verifier) newSession() *ruleSession {
	if v.Opts.FreshSolvers {
		return nil
	}
	return newRuleSession()
}

// VerifyAll verifies every rule in the program, in source order.
// Equivalent to VerifyAllContext with a background context.
func (v *Verifier) VerifyAll() ([]*RuleResult, error) {
	return v.VerifyAllContext(context.Background())
}

// VerifyAllContext verifies every rule in the program, in source order,
// under a cancellation context. When Options.Parallelism is greater
// than one, rules are verified concurrently; results keep source order.
//
// The sweep is fault-isolated: a rule whose verification panics or
// errors yields a RuleResult with OutcomeError (see VerifyRuleContext)
// instead of aborting the run. On cancellation the completed results
// are returned — still in source order, incomplete rules omitted —
// together with ctx.Err(); every completed unit is already flushed to
// the result cache, so an immediate re-run resumes from cache hits.
func (v *Verifier) VerifyAllContext(ctx context.Context) ([]*RuleResult, error) {
	rules := v.Prog.Rules
	if pool := v.Opts.Scheduler; pool != nil {
		return v.verifyAllScheduled(ctx, rules, pool)
	}
	n := v.Opts.Parallelism
	if n <= 1 {
		out := make([]*RuleResult, 0, len(rules))
		for _, r := range rules {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			rr := v.verifyRuleContained(ctx, r)
			if rr == nil {
				return out, ctx.Err()
			}
			out = append(out, v.dropIfForeign(rr)...)
		}
		return out, nil
	}

	// Parallel sweep: spin up a transient work-stealing pool sized to
	// the work (never more workers than units) and schedule per-unit.
	units := 0
	for _, r := range rules {
		units += len(v.Sigs(r))
	}
	if n > units {
		n = units
	}
	if n < 1 {
		n = 1
	}
	pool := sched.NewPool(n, obs.Get(ctx).Registry())
	defer pool.Close()
	return v.verifyAllScheduled(ctx, rules, pool)
}

// dropIfForeign filters one sweep result under sharding: a rule whose
// every unit belongs to other shards yields an empty result that would
// read as "inapplicable", so it is omitted from the sweep instead.
// Without sharding every result passes through.
func (v *Verifier) dropIfForeign(rr *RuleResult) []*RuleResult {
	if v.Opts.ShardCount > 1 && len(rr.Insts) == 0 {
		return nil
	}
	return []*RuleResult{rr}
}

// solverConfig is the per-query configuration for standalone queries
// (interpreter and overlap analysis); verification units use
// unitConfig, which pins one deadline for the whole unit.
func (v *Verifier) solverConfig() smt.Config {
	cfg := smt.Config{
		PropagationBudget: v.Opts.PropagationBudget,
		NoInprocess:       v.Opts.NoInprocess,
		NoStructHash:      v.Opts.NoStructHash,
	}
	if v.Opts.Timeout > 0 {
		cfg.Deadline = time.Now().Add(v.Opts.Timeout)
	}
	return cfg
}

// unitConfig builds the solver configuration for one verification-unit
// attempt: a single unit-level deadline derived once (a unit with many
// assignments no longer accumulates N × Timeout wall clock across its
// queries), the attempt's propagation budget, and the cancellation
// context.
func (v *Verifier) unitConfig(ctx context.Context, budget int64) smt.Config {
	cfg := smt.Config{
		Ctx:               ctx,
		PropagationBudget: budget,
		NoInprocess:       v.Opts.NoInprocess,
		NoStructHash:      v.Opts.NoStructHash,
	}
	if v.Opts.Timeout > 0 {
		cfg.Deadline = time.Now().Add(v.Opts.Timeout)
	}
	return cfg
}

// VerifyInstantiation runs the full §3.2 pipeline for one rule and type
// instantiation: monomorphize, elaborate, applicability query (Eq. 1),
// optional distinct-models check, and equivalence query (Eq. 2/3).
//
// When a result cache is configured (Options.CacheDir / Options.Cache),
// the prepared queries are fingerprinted first and a stored verdict for
// the same content is replayed instead of solved; fresh verdicts are
// recorded afterwards. Cached timeouts are retried when the current
// Options.Timeout (or escalation-ladder budget) is more generous than
// the one they were tried under.
func (v *Verifier) VerifyInstantiation(rule *isle.Rule, sig *isle.Sig) (*InstOutcome, error) {
	return v.VerifyInstantiationContext(context.Background(), rule, sig)
}

// VerifyInstantiationContext is VerifyInstantiation under a cancellation
// context.
func (v *Verifier) VerifyInstantiationContext(ctx context.Context, rule *isle.Rule, sig *isle.Sig) (*InstOutcome, error) {
	return v.verifyInstantiation(ctx, v.newSession(), rule, sig)
}

// ladderMaxBudget returns the most generous propagation budget this
// configuration would spend on a unit: the top of the escalation ladder,
// or the base budget without one (0 = unlimited).
func (v *Verifier) ladderMaxBudget() int64 {
	b := v.Opts.PropagationBudget
	if b <= 0 {
		return 0
	}
	for _, r := range v.Opts.RetryBudgets {
		if r == 0 {
			return 0
		}
		if r > b {
			b = r
		}
	}
	return b
}

// verifyInstantiation is VerifyInstantiation solving through the given
// rule session (nil = fresh solver per query).
func (v *Verifier) verifyInstantiation(ctx context.Context, rs *ruleSession, rule *isle.Rule, sig *isle.Sig) (*InstOutcome, error) {
	start := time.Now()
	io := &InstOutcome{Sig: sig}
	defer func() { io.Duration = time.Since(start) }()
	sc := obs.Get(ctx)

	spM := sc.Start(obs.PhaseMonomorphize)
	ra, assigns, err := v.monomorphize(rule, sig)
	spM.SetAttr(obs.Int("assignments", int64(len(assigns))))
	spM.End()
	if err != nil {
		return nil, err
	}
	io.Assignments = len(assigns)
	if len(assigns) == 0 {
		io.Outcome = OutcomeInapplicable
		return io, nil
	}

	// Elaborate into the session's shared builder. Scopes are derived
	// from unit content alone, so the resulting terms — and therefore the
	// cache fingerprints below — do not depend on which units the session
	// solved earlier.
	var shared *smt.Builder
	if rs != nil {
		shared = rs.b
	}
	spE := sc.Start(obs.PhaseElaborate, obs.Int("assignments", int64(len(assigns))))
	preps := make([]*prepared, len(assigns))
	for i, a := range assigns {
		if preps[i], err = v.prepareAssignment(ra, a, shared, unitScope(sig, i)); err != nil {
			spE.End()
			return nil, err
		}
	}
	spE.End()

	cache := v.cacheStore()
	var key string
	if v.Opts.ShardCount > 1 {
		// Sharded sweep: the unit's content fingerprint decides which
		// process owns it. Foreign units are skipped before the cache is
		// probed, so a shard's hit/miss statistics cover only its own
		// work.
		key = v.fingerprint(preps)
		if vcache.Shard(key, v.Opts.ShardCount) != v.Opts.ShardIndex {
			io.Outcome = OutcomeInapplicable
			io.Skipped = true
			return io, nil
		}
	}
	journal := v.Opts.Journal
	if cache != nil {
		spC := sc.Start(obs.PhaseCacheProbe)
		if key == "" {
			key = v.fingerprint(preps)
		}
		e, st := cache.LookupBudget(key, v.Opts.Timeout, v.ladderMaxBudget())
		spC.SetAttr(obs.Str("status", st.String()))
		spC.End()
		sc.Registry().Counter("vcache." + st.String()).Inc()
		// A stale entry (a cached timeout the ladder would re-escalate) is
		// still final for a resumed sweep when the journal says this sweep
		// already completed the unit: it was solved under this very
		// configuration by the killed attempt.
		if st == vcache.Hit || (st == vcache.Stale && journal != nil && journal.Done(key)) {
			if err := applyEntry(e, io); err == nil {
				if journal != nil {
					_ = journal.Record(key)
				}
				return io, nil
			}
			// An undecodable entry degrades to a miss: fall through and
			// re-solve (the fresh result overwrites it). Counted so cache
			// degradation is observable (`crocus -stats`).
			cache.NoteDecodeFailure()
			sc.Registry().Counter("vcache.decode_failure").Inc()
		}
	}

	// Base attempt, then the timeout-escalation ladder: re-solve the
	// whole unit at each more generous budget until it decides. Stats
	// accumulate across attempts; the final attempt's budget is what the
	// cache entry records.
	budget := v.Opts.PropagationBudget
	spA := sc.Start(obs.PhaseAttempt, obs.Int("budget", budget))
	out, err := v.solveUnit(ctx, rs, preps, io, budget)
	spA.SetAttr(obs.Str("outcome", out.String()))
	spA.End()
	if err != nil {
		return nil, err
	}
	if out == OutcomeTimeout && budget > 0 {
		for _, rung := range v.Opts.RetryBudgets {
			if rung != 0 && rung <= budget {
				continue // not more generous than the last attempt
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			budget = rung
			spR := sc.Start(obs.PhaseEscalation,
				obs.Int("budget", budget), obs.Int("rung", int64(io.Escalations+1)))
			out, err = v.solveUnit(ctx, rs, preps, io, budget)
			spR.SetAttr(obs.Str("outcome", out.String()))
			spR.End()
			if err != nil {
				return nil, err
			}
			io.Escalations++
			sc.Registry().Counter("escalation.attempts").Inc()
			if out != OutcomeTimeout || budget == 0 {
				break
			}
		}
	}
	io.Outcome = out

	// A cancellation that surfaced as Unknown mid-unit must not be
	// recorded as a timeout verdict.
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	v.recordOutcome(cache, key, rule, sig, io, budget, time.Since(start))
	// Journal strictly after the cache write: a key in the journal always
	// has a replayable verdict behind it, so a kill between the two just
	// re-runs the unit (into a cache hit) on resume.
	if journal != nil {
		_ = journal.Record(key)
	}
	return io, nil
}

// solveUnit decides every prepared assignment of one unit at the given
// propagation budget under a single unit-level deadline, accumulating
// statistics and the distinct-models verdict into io. On failure it sets
// io.Counterexample. It returns the unit's aggregate outcome.
func (v *Verifier) solveUnit(ctx context.Context, rs *ruleSession, preps []*prepared, io *InstOutcome, budget int64) (Outcome, error) {
	cfg := v.unitConfig(ctx, budget)
	agg := OutcomeInapplicable
	for _, p := range preps {
		out, cex, distinct, err := v.solvePrepared(ctx, rs, p, io, cfg)
		if err != nil {
			return 0, err
		}
		if distinct != nil && (io.DistinctInputs == nil || !*distinct) {
			io.DistinctInputs = distinct
		}
		if out == OutcomeFailure {
			io.Counterexample = cex
			return OutcomeFailure, nil
		}
		switch out {
		case OutcomeTimeout:
			agg = OutcomeTimeout
		case OutcomeSuccess:
			if agg != OutcomeTimeout {
				agg = OutcomeSuccess
			}
		}
	}
	return agg, nil
}

// solvePrepared decides one prepared assignment, accumulating SAT
// statistics into io. With a rule session, the three queries run
// incrementally on the session's solver; otherwise each builds a fresh
// solver.
func (v *Verifier) solvePrepared(ctx context.Context, rs *ruleSession, p *prepared, io *InstOutcome, cfg smt.Config) (Outcome, *Counterexample, *bool, error) {
	el, b := p.el, p.el.b
	sc := obs.Get(ctx)
	check := func(assertions []smt.TermID) (smt.Result, error) {
		if rs != nil {
			return rs.sess.Check(assertions, cfg)
		}
		return smt.Check(b, assertions, cfg)
	}
	// query wraps one of the unit's three SMT queries in its named span,
	// tagging the result status.
	query := func(phase string, assertions []smt.TermID) (smt.Result, error) {
		sp := sc.Start(phase)
		res, err := check(assertions)
		if err == nil {
			sp.SetAttr(obs.Str("status", res.Status.String()))
		}
		sp.End()
		return res, err
	}

	// Query 1 (Eq. 1): applicability — P_LHS ∧ R_LHS ∧ P_RHS satisfiable?
	res, err := query(obs.PhaseQueryApp, p.base)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("applicability query: %w", err)
	}
	io.Stats.addResult(res)
	if cerr := ctx.Err(); cerr != nil {
		return 0, nil, nil, cerr
	}
	switch res.Status {
	case smt.UnsatRes:
		return OutcomeInapplicable, nil, nil, nil
	case smt.Unknown:
		return OutcomeTimeout, nil, nil, nil
	}

	// Optional distinct-models check (§3.2.1): does a second model exist in
	// which every bitvector input differs from the first model's value? If
	// not, the rule matches only one set of inputs (§4.4.2's signal).
	var distinct *bool
	if v.Opts.DistinctModels && len(el.inputs) > 0 {
		var diffs []smt.TermID
		for _, in := range el.inputs {
			name := b.Term(in).Name
			if val, ok := res.Model.Value(name); ok {
				diffs = append(diffs, b.Distinct(in, b.BVConst(val.Bits, b.SortOf(in).Width)))
			}
		}
		if len(diffs) > 0 {
			q := append(append([]smt.TermID{}, p.base...), b.And(diffs...))
			dres, err := query(obs.PhaseQueryDist, q)
			if err != nil {
				return 0, nil, nil, fmt.Errorf("distinctness query: %w", err)
			}
			io.Stats.addResult(dres)
			if dres.Status != smt.Unknown {
				d := dres.Status == smt.SatRes
				distinct = &d
			}
		}
	}

	// Query 2 (Eq. 2/3): equivalence — search for a counterexample where
	// the preconditions hold but the condition or an RHS require fails.
	q2 := append(append([]smt.TermID{}, p.base...), b.Not(p.goal))
	res2, err := query(obs.PhaseQueryEquiv, q2)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("equivalence query: %w", err)
	}
	io.Stats.addResult(res2)
	switch res2.Status {
	case smt.Unknown:
		return OutcomeTimeout, nil, distinct, nil
	case smt.UnsatRes:
		return OutcomeSuccess, nil, distinct, nil
	}

	cex, err := v.buildCounterexample(el.ra, el, res2.Model)
	if err != nil {
		return 0, nil, nil, err
	}
	return OutcomeFailure, cex, distinct, nil
}

// buildCounterexample lifts a failing model back into ISLE surface syntax
// in the paper's presentation: the rule with `[var|#value]` bindings and a
// final `lhs => rhs` value line.
func (v *Verifier) buildCounterexample(ra *ruleAnalysis, el *elaboration, m *smt.Model) (*Counterexample, error) {
	env := m.Env()
	cex := &Counterexample{Inputs: map[string]smt.Value{}}
	for _, name := range ra.lhsVars {
		t, ok := el.varVal[name]
		if !ok {
			continue
		}
		if val, ok := m.Value(el.b.Term(t).Name); ok {
			cex.Inputs[name] = val
		}
	}
	lv, err := el.b.Eval(el.LHSResult, env)
	if err != nil {
		return nil, fmt.Errorf("evaluating LHS under model: %w", err)
	}
	rv, err := el.b.Eval(el.RHSResult, env)
	if err != nil {
		return nil, fmt.Errorf("evaluating RHS under model: %w", err)
	}
	cex.LHSValue = lv
	cex.RHSValue = rv

	var sb strings.Builder
	renderNode(&sb, ra, el, m, ra.rule.LHS)
	sb.WriteString(" =>\n")
	renderNode(&sb, ra, el, m, ra.rule.RHS)
	fmt.Fprintf(&sb, "\n\n%s => %s", lv, rv)
	cex.Rendered = sb.String()
	return cex, nil
}

// renderNode prints a rule tree with model values attached to variables.
func renderNode(sb *strings.Builder, ra *ruleAnalysis, el *elaboration, m *smt.Model, n *isle.TermNode) {
	switch n.Kind {
	case isle.NVar:
		slot := ra.nodeSlot[n]
		if ra.ts.kindOf(slot) == kInt {
			if iv, ok := el.a.intValOf(slot); ok {
				fmt.Fprintf(sb, "[%s|%d]", n.Name, iv)
				return
			}
		}
		if t, ok := el.varVal[n.Name]; ok {
			if val, ok := m.Value(el.b.Term(t).Name); ok {
				fmt.Fprintf(sb, "[%s|%s]", n.Name, val)
				return
			}
		}
		sb.WriteString(n.Name)
	case isle.NWildcard:
		sb.WriteString("_")
	case isle.NConst:
		sb.WriteString(n.String())
	case isle.NLet:
		sb.WriteString("(let (")
		for i, b := range n.Lets {
			if i > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(sb, "(%s %s ", b.Name, b.Type)
			renderNode(sb, ra, el, m, b.Expr)
			sb.WriteString(")")
		}
		sb.WriteString(") ")
		renderNode(sb, ra, el, m, n.Body)
		sb.WriteString(")")
	case isle.NApply:
		sb.WriteString("(")
		sb.WriteString(n.Name)
		for _, a := range n.Args {
			sb.WriteString(" ")
			renderNode(sb, ra, el, m, a)
		}
		sb.WriteString(")")
	}
}

// SortedRuleNames returns the program's rule names in sorted order
// (convenience for stable reporting).
func (v *Verifier) SortedRuleNames() []string {
	names := make([]string, 0, len(v.Prog.Rules))
	for _, r := range v.Prog.Rules {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}
