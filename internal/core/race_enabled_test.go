//go:build race

package core_test

// raceDetectorEnabled reports whether this test binary was built with
// -race. The full-corpus differential sweeps are ~10x slower under the
// race detector and blow the default per-package test timeout, so the
// heaviest of them skip; the X64 and midend sweeps still drive the
// concurrent (Parallelism > 1) incremental session path under race.
const raceDetectorEnabled = true
