package core_test

// Differential test of the incremental solve pipeline (ISSUE 2): the
// per-rule session (shared builder, retained learned clauses, word-level
// simplification) must be verdict-for-verdict identical to the reference
// fresh-solver-per-query pipeline across the full embedded corpus.
//
// Comparison semantics: every unit DECIDED by both pipelines must agree
// exactly — outcome, distinct-models verdict, counterexample presence.
// A budget exhaustion (OutcomeTimeout) is a resource artifact, not a
// verdict: the two pipelines search with different clause databases, so
// a query whose cost is near the budget legitimately decides in one and
// not the other (the aarch64 corpus has mid-tier rotate/mul-8 queries in
// the 3–30M propagation band, flipping in BOTH directions at any
// affordable budget). Treating timeout as compatible-with-anything keeps
// the test deterministic without burning hundreds of millions of wasted
// propagations per hard instance; a coverage floor asserts that almost
// all units are decided by both pipelines, so the parity check cannot
// degenerate into vacuity.
//
// This file lives in package core_test because internal/corpus imports
// internal/core.

import (
	"fmt"
	"testing"

	"crocus/internal/core"
	"crocus/internal/corpus"
	"crocus/internal/isle"
)

// diffBudget decides every tractable corpus query in either pipeline,
// while the intractable wide mul/div/rem instances blow through it even
// with a warm session.
const diffBudget = 5_000_000

// bugsBudget is wider: the division-bug counterexample searches are the
// hardest satisfiable queries in the tree, needing up to ~10M
// propagations depending on pipeline and search order.
const bugsBudget = 20_000_000

// unitVerdict is one per-instantiation result in comparable form. The
// concrete counterexample values are NOT compared: a failing query has
// many models and the two pipelines search in different orders, so each
// may legitimately return a different witness.
type unitVerdict struct {
	name     string
	outcome  core.Outcome
	distinct string
	hasCex   bool
}

func flattenResults(rs []*core.RuleResult) []unitVerdict {
	var out []unitVerdict
	for _, rr := range rs {
		for _, io := range rr.Insts {
			sig := ""
			if io.Sig != nil {
				sig = io.Sig.String()
			}
			u := unitVerdict{
				name:    fmt.Sprintf("%s @ %s", rr.Rule.Name, sig),
				outcome: io.Outcome,
				hasCex:  io.Counterexample != nil,
			}
			if io.DistinctInputs != nil {
				u.distinct = fmt.Sprintf("%v", *io.DistinctInputs)
			}
			out = append(out, u)
		}
	}
	return out
}

// diffCorpus verifies prog under both pipelines and compares verdicts.
// floorPct is the minimum percentage of units that must be decided by
// both pipelines: 85 for the main corpora, lower for the tiny
// division-heavy bug corpora whose wide-width instantiations are
// intractable in either pipeline.
func diffCorpus(t *testing.T, prog *isle.Program, distinct bool, budget int64, floorPct int) {
	t.Helper()
	mk := func(freshSolvers bool) []unitVerdict {
		v := core.New(prog, core.Options{
			PropagationBudget: budget,
			DistinctModels:    distinct,
			Parallelism:       4,
			FreshSolvers:      freshSolvers,
		})
		rs, err := v.VerifyAll()
		if err != nil {
			t.Fatal(err)
		}
		return flattenResults(rs)
	}
	fresh := mk(true)
	incr := mk(false)
	if len(fresh) != len(incr) {
		t.Fatalf("result count differs: fresh %d, incremental %d", len(fresh), len(incr))
	}
	decidedBoth := 0
	for i := range fresh {
		f, n := fresh[i], incr[i]
		if f.name != n.name {
			t.Fatalf("unit order differs at %d: %q vs %q", i, f.name, n.name)
		}
		if f.outcome == core.OutcomeTimeout || n.outcome == core.OutcomeTimeout {
			continue // resource artifact, compatible with anything
		}
		decidedBoth++
		if f != n {
			t.Errorf("pipelines disagree on %s:\n  fresh:       %v distinct=%q cex=%v\n  incremental: %v distinct=%q cex=%v",
				f.name, f.outcome, f.distinct, f.hasCex, n.outcome, n.distinct, n.hasCex)
		}
	}
	// Coverage floor: the timeout escape hatch must stay an edge case, not
	// the common case, or the parity check above checks nothing.
	if min := len(fresh) * floorPct / 100; decidedBoth < min {
		t.Errorf("only %d/%d units decided by both pipelines (floor %d)", decidedBoth, len(fresh), min)
	}
}

// skipUnderRace skips the differential sweeps that exceed the race
// detector's time budget (they are pure solver workloads; the X64 and
// midend sweeps cover the same concurrent code paths under race).
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("full-corpus differential sweep is too slow under -race")
	}
}

func TestIncrementalMatchesFreshAarch64(t *testing.T) {
	skipUnderRace(t)
	prog, err := corpus.LoadAarch64()
	if err != nil {
		t.Fatal(err)
	}
	diffCorpus(t, prog, false, diffBudget, 85)
}

func TestIncrementalMatchesFreshX64(t *testing.T) {
	prog, err := corpus.LoadX64()
	if err != nil {
		t.Fatal(err)
	}
	diffCorpus(t, prog, false, diffBudget, 85)
}

func TestIncrementalMatchesFreshMidend(t *testing.T) {
	prog, err := corpus.LoadMidend()
	if err != nil {
		t.Fatal(err)
	}
	diffCorpus(t, prog, false, diffBudget, 85)
}

// TestIncrementalMatchesFreshDistinctModels covers the §3.2.1 extra
// query (and its counterexample path) under both pipelines on the
// corpus with known distinct-model failures.
func TestIncrementalMatchesFreshDistinctModels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipUnderRace(t)
	prog, err := corpus.LoadAarch64()
	if err != nil {
		t.Fatal(err)
	}
	diffCorpus(t, prog, true, diffBudget, 85)
}

// TestIncrementalMatchesFreshBugs replays every reproduced defect under
// both pipelines: the counterexamples that reproduce the CVEs must be
// found with shared sessions too.
func TestIncrementalMatchesFreshBugs(t *testing.T) {
	skipUnderRace(t)
	for _, b := range corpus.Bugs() {
		b := b
		t.Run(b.ID, func(t *testing.T) {
			prog, err := corpus.LoadBug(b)
			if err != nil {
				t.Fatal(err)
			}
			// The division bug corpora are the outlier: half their
			// instantiations are wide-division counterexample searches that
			// sit at or beyond any affordable budget in BOTH pipelines, so
			// the anti-vacuity floor is 50% rather than 85%.
			diffCorpus(t, prog, b.DistinctModels, bugsBudget, 50)
		})
	}
}
