package core

import (
	"fmt"
	"sort"

	"crocus/internal/isle"
	"crocus/internal/spec"
)

// assignment is one complete resolution of widths and integer type values
// for a rule under a specific type instantiation: the output of
// monomorphization (§3.1.3). Widths resolved by unification live in the
// typeState; widths and integer values found by the pass-2 solver live in
// the overlay maps (keyed by union-find root).
type assignment struct {
	ra    *ruleAnalysis
	width map[tvar]int
	ival  map[tvar]int64
}

func newAssignment(ra *ruleAnalysis) *assignment {
	return &assignment{ra: ra, width: map[tvar]int{}, ival: map[tvar]int64{}}
}

func (a *assignment) clone() *assignment {
	cp := newAssignment(a.ra)
	for k, w := range a.width {
		cp.width[k] = w
	}
	for k, iv := range a.ival {
		cp.ival[k] = iv
	}
	return cp
}

func (a *assignment) widthOf(v tvar) (int, bool) {
	r := a.ra.ts.find(v)
	if w := a.ra.ts.widths[r]; w != 0 {
		return w, true
	}
	w, ok := a.width[r]
	return w, ok
}

// setWidth records a width for v's root, reporting false on conflict.
func (a *assignment) setWidth(v tvar, w int) bool {
	if w < 1 || w > 64 {
		return false
	}
	r := a.ra.ts.find(v)
	if tw := a.ra.ts.widths[r]; tw != 0 {
		return tw == w
	}
	if cur, ok := a.width[r]; ok {
		return cur == w
	}
	a.width[r] = w
	return true
}

func (a *assignment) intValOf(v tvar) (int64, bool) {
	r := a.ra.ts.find(v)
	iv, ok := a.ival[r]
	return iv, ok
}

// setIntVal records an integer value for v's root, reporting false on
// conflict.
func (a *assignment) setIntVal(v tvar, val int64) bool {
	r := a.ra.ts.find(v)
	if cur, ok := a.ival[r]; ok {
		return cur == val
	}
	a.ival[r] = val
	return true
}

// evalInt evaluates an integer-kinded annotation expression statically
// under the assignment. Only constants, integer variables, widthof, and
// +/-/* are statically evaluable; everything else reports !ok.
func (a *assignment) evalInt(inst *specInstance, e *spec.Expr) (int64, bool) {
	switch e.Kind {
	case spec.ExprConst:
		if e.IsBool || e.BitWidth > 0 {
			return 0, false
		}
		return e.IntVal, true
	case spec.ExprVar:
		s, ok := inst.env[e.Name]
		if !ok {
			return 0, false
		}
		return a.intValOf(s)
	case spec.ExprWidthOf:
		s, ok := inst.exprSlot[e.Args[0]]
		if !ok {
			return 0, false
		}
		w, ok := a.widthOf(s)
		return int64(w), ok
	case spec.ExprBinop:
		x, okx := a.evalInt(inst, e.Args[0])
		y, oky := a.evalInt(inst, e.Args[1])
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		}
		return 0, false
	case spec.ExprUnop:
		if e.Op == "-" {
			x, ok := a.evalInt(inst, e.Args[0])
			return -x, ok
		}
		return 0, false
	case spec.ExprIf:
		c, ok := a.evalIntCond(inst, e.Args[0])
		if !ok {
			return 0, false
		}
		if c {
			return a.evalInt(inst, e.Args[1])
		}
		return a.evalInt(inst, e.Args[2])
	case spec.ExprSwitch:
		sc, ok := a.evalInt(inst, e.Args[0])
		if !ok {
			return 0, false
		}
		for _, cs := range e.Cases {
			m, ok := a.evalInt(inst, cs[0])
			if !ok {
				return 0, false
			}
			if m == sc {
				return a.evalInt(inst, cs[1])
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

// evalIntCond statically evaluates a boolean condition over integer
// expressions (comparisons and connectives), used by evalInt for
// integer-valued if/switch helpers such as operand_size.
func (a *assignment) evalIntCond(inst *specInstance, e *spec.Expr) (bool, bool) {
	switch e.Kind {
	case spec.ExprConst:
		if e.IsBool {
			return e.BoolVal, true
		}
		return false, false
	case spec.ExprUnop:
		if e.Op == "!" {
			v, ok := a.evalIntCond(inst, e.Args[0])
			return !v, ok
		}
		return false, false
	case spec.ExprBinop:
		switch e.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			x, okx := a.evalInt(inst, e.Args[0])
			y, oky := a.evalInt(inst, e.Args[1])
			if !okx || !oky {
				return false, false
			}
			switch e.Op {
			case "=":
				return x == y, true
			case "!=":
				return x != y, true
			case "<":
				return x < y, true
			case "<=":
				return x <= y, true
			case ">":
				return x > y, true
			default:
				return x >= y, true
			}
		}
		return false, false
	default:
		return false, false
	}
}

// monomorphize runs both inference passes for one type instantiation and
// returns the set of complete assignments (usually one; empty means the
// rule is inapplicable at this instantiation, per Fig. 3).
func (v *Verifier) monomorphize(rule *isle.Rule, sig *isle.Sig) (*ruleAnalysis, []*assignment, error) {
	ra, err := v.analyzeRule(rule)
	if err != nil {
		if IsTypeConflict(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}

	// Pin the instruction root's signature (the per-rule type
	// instantiation sets of §3.1.3).
	if sig != nil {
		if ra.irTerm == nil {
			return nil, nil, fmt.Errorf("%s: rule has no instantiated root term", rule)
		}
		if len(sig.Args) != len(ra.irTerm.Args) {
			return nil, nil, fmt.Errorf("%s: instantiation arity %d does not match %s/%d",
				rule, len(sig.Args), ra.irTerm.Name, len(ra.irTerm.Args))
		}
		for i, at := range sig.Args {
			if err := ra.ts.applyMType(ra.nodeSlot[ra.irTerm.Args[i]], at); err != nil {
				return ra, nil, nil // width conflict: inapplicable
			}
		}
		if err := ra.ts.applyMType(ra.nodeSlot[ra.irTerm], sig.Ret); err != nil {
			return ra, nil, nil
		}
	}

	assigns, err := v.inferAssignments(ra)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", rule, err)
	}
	return ra, assigns, nil
}

// inferAssignments runs constant seeding, propagation, and the
// enumeration of remaining primary unknowns for an analyzed (and
// possibly sig-pinned) rule, returning every complete assignment.
func (v *Verifier) inferAssignments(ra *ruleAnalysis) ([]*assignment, error) {
	base := newAssignment(ra)

	// Seed integer values of constant rule nodes (e.g. literal type or
	// immediate arguments).
	for n, s := range ra.nodeSlot {
		if n.Kind != isle.NConst {
			continue
		}
		switch ra.ts.kindOf(s) {
		case kBool, kBV:
			continue
		}
		if !base.setIntVal(s, n.IntVal) {
			return nil, nil
		}
	}

	// Propagation to fixpoint over the deferred constraints. A returned
	// conflict means this instantiation admits no typing.
	if !ra.propagate(base) {
		return nil, nil
	}

	// Enumerate any remaining primary unknowns (the solver-based model
	// enumeration of Fig. 3's resolve_unknown_tys, realized as
	// finite-domain search over the candidate width set).
	unknownBV, unknownInt := ra.unknownSlots(base)
	if len(unknownBV)+len(unknownInt) > 6 {
		return nil, fmt.Errorf("too many unresolved type variables (%d)",
			len(unknownBV)+len(unknownInt))
	}
	doms := v.widthDomain()
	all := append(append([]tvar{}, unknownBV...), unknownInt...)
	var results []*assignment
	var enumerate func(i int, cur *assignment)
	enumerate = func(i int, cur *assignment) {
		if i == len(all) {
			cand := cur.clone()
			if !ra.propagate(cand) {
				return
			}
			ra.defaultInteriorWidths(cand)
			if ra.checkAll(cand) {
				results = append(results, cand)
			}
			return
		}
		s := all[i]
		for _, w := range doms {
			next := cur.clone()
			var ok bool
			if i < len(unknownBV) {
				ok = next.setWidth(s, w)
			} else {
				ok = next.setIntVal(s, int64(w))
			}
			if ok {
				enumerate(i+1, next)
			}
		}
	}
	enumerate(0, base)
	return results, nil
}

func (v *Verifier) widthDomain() []int {
	if len(v.Opts.Widths) > 0 {
		return v.Opts.Widths
	}
	return []int{8, 16, 32, 64}
}

// propagate applies the deferred constraints to fixpoint, writing concrete
// widths and integer values into the assignment overlay. It reports false
// on a conflict (no valid typing).
func (ra *ruleAnalysis) propagate(a *assignment) bool {
	for changed := true; changed; {
		changed = false
		for _, d := range ra.deferred {
			switch d.kind {
			case dWidthIsValue:
				if val, ok := a.evalInt(d.inst, d.expr); ok {
					if w, had := a.widthOf(d.bv); !had {
						if !a.setWidth(d.bv, int(val)) {
							return false
						}
						changed = true
					} else if int64(w) != val {
						return false
					}
				} else if w, ok := a.widthOf(d.bv); ok {
					// Push the known width back into the expression.
					if ra.pushInt(a, d.inst, d.expr, int64(w), &changed) == conflict {
						return false
					}
				}
			case dIntEq:
				sa, oka := d.inst.exprSlot[d.a]
				if !oka || ra.ts.kindOf(sa) != kInt {
					continue // not an integer equality; handled by the VC
				}
				va, okA := a.evalInt(d.inst, d.a)
				vb, okB := a.evalInt(d.inst, d.b)
				switch {
				case okA && okB:
					if va != vb {
						return false
					}
				case okA:
					if ra.pushInt(a, d.inst, d.b, va, &changed) == conflict {
						return false
					}
				case okB:
					if ra.pushInt(a, d.inst, d.a, vb, &changed) == conflict {
						return false
					}
				}
			case dWidthSum:
				sum, known := 0, true
				for _, arg := range d.args {
					if w, ok := a.widthOf(d.inst.exprSlot[arg]); ok {
						sum += w
					} else {
						known = false
					}
				}
				if known {
					if w, ok := a.widthOf(d.bv); ok {
						if w != sum {
							return false
						}
					} else {
						if !a.setWidth(d.bv, sum) {
							return false
						}
						changed = true
					}
				}
			case dWidthAtLeast:
				if w, ok := a.widthOf(d.bv); ok && w < d.minW {
					return false
				}
			case dWidthGE:
				w1, ok1 := a.widthOf(d.bv)
				w2, ok2 := a.widthOf(d.bv2)
				if ok1 && ok2 && w1 < w2 {
					return false
				}
			}
		}
	}
	return true
}

type pushResult int

const (
	pushed pushResult = iota
	noEffect
	conflict
)

// pushInt back-propagates a known integer value into a variable or
// widthof expression (e.g. learning `ty` from a pinned width, or a width
// from a pinned `ty`).
func (ra *ruleAnalysis) pushInt(a *assignment, inst *specInstance, e *spec.Expr, val int64, changed *bool) pushResult {
	switch e.Kind {
	case spec.ExprVar:
		s, ok := inst.env[e.Name]
		if !ok {
			return noEffect
		}
		if cur, ok := a.intValOf(s); ok {
			if cur != val {
				return conflict
			}
			return noEffect
		}
		a.setIntVal(s, val)
		*changed = true
		return pushed
	case spec.ExprWidthOf:
		s, ok := inst.exprSlot[e.Args[0]]
		if !ok {
			return noEffect
		}
		if w, ok := a.widthOf(s); ok {
			if int64(w) != val {
				return conflict
			}
			return noEffect
		}
		if val < 1 || val > 64 || !a.setWidth(s, int(val)) {
			return conflict
		}
		*changed = true
		return pushed
	default:
		return noEffect
	}
}

// unknownSlots collects the primary unknowns after propagation: union-find
// roots of rule nodes and spec variables that still lack a width (BV) or a
// value (Int). Interior annotation subexpressions are excluded — their
// widths derive from these once assigned (defaultInteriorWidths handles
// the genuinely unconstrained remainder).
func (ra *ruleAnalysis) unknownSlots(a *assignment) (bv, ints []tvar) {
	seenBV := map[tvar]bool{}
	seenInt := map[tvar]bool{}
	consider := func(s tvar) {
		r := ra.ts.find(s)
		switch ra.ts.kinds[r] {
		case kBV:
			if _, ok := a.widthOf(r); !ok && !seenBV[r] {
				seenBV[r] = true
				bv = append(bv, r)
			}
		case kInt:
			if _, ok := a.intValOf(r); !ok && !seenInt[r] {
				seenInt[r] = true
				ints = append(ints, r)
			}
		}
	}
	for _, s := range ra.nodeSlot {
		consider(s)
	}
	for _, inst := range ra.insts {
		for _, s := range inst.env {
			consider(s)
		}
	}
	// nodeSlot and env are maps, so collection order is randomized;
	// canonicalize so assignment enumeration — and with it query
	// construction and vcache fingerprints — is deterministic across runs.
	sort.Slice(bv, func(i, j int) bool { return bv[i] < bv[j] })
	sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
	return bv, ints
}

// defaultInteriorWidths pins any still-unresolved interior bitvector width
// to the register width; such slots are unconstrained by every deferred
// relation (rare, and harmless because nothing relates them to the rule's
// values beyond the assertions checkAll validates).
func (ra *ruleAnalysis) defaultInteriorWidths(a *assignment) {
	for _, inst := range ra.insts {
		for _, s := range inst.exprSlot {
			r := ra.ts.find(s)
			if ra.ts.kinds[r] == kBV {
				if _, ok := a.widthOf(r); !ok {
					a.setWidth(r, 64)
				}
			}
		}
	}
}

// checkAll re-validates every deferred constraint under a complete
// candidate assignment.
func (ra *ruleAnalysis) checkAll(a *assignment) bool {
	for _, d := range ra.deferred {
		switch d.kind {
		case dWidthIsValue:
			val, ok := a.evalInt(d.inst, d.expr)
			if !ok {
				return false
			}
			w, ok := a.widthOf(d.bv)
			if !ok || int64(w) != val {
				return false
			}
		case dIntEq:
			sa, oka := d.inst.exprSlot[d.a]
			if !oka || ra.ts.kindOf(sa) != kInt {
				continue
			}
			va, okA := a.evalInt(d.inst, d.a)
			vb, okB := a.evalInt(d.inst, d.b)
			if !okA || !okB || va != vb {
				return false
			}
		case dWidthSum:
			sum := 0
			for _, arg := range d.args {
				w, ok := a.widthOf(d.inst.exprSlot[arg])
				if !ok {
					return false
				}
				sum += w
			}
			w, ok := a.widthOf(d.bv)
			if !ok || w != sum {
				return false
			}
		case dWidthAtLeast:
			w, ok := a.widthOf(d.bv)
			if !ok || w < d.minW {
				return false
			}
		case dWidthGE:
			w1, ok1 := a.widthOf(d.bv)
			w2, ok2 := a.widthOf(d.bv2)
			if !ok1 || !ok2 || w1 < w2 {
				return false
			}
		}
	}
	return true
}
