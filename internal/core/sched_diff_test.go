package core_test

// Differential tests for the unit-scheduled sweep (ISSUE 7 acceptance):
// on the embedded corpora, unit-scheduled verdicts must be byte-identical
// to the serial pipeline under both the fresh-solver and the incremental
// session configuration.
//
// Comparison semantics follow the repo convention (see
// incremental_test.go): outcome, unit identity, distinct-models verdict,
// and counterexample presence are compared exactly. Rendered
// counterexample bytes are additionally compared under fresh solvers,
// where the model found is a deterministic function of the query alone.
// Under the session configuration the serial pipeline and each scheduled
// worker accumulate different clause databases, so a failing query may
// legitimately surface a different model — verdicts still agree.

import (
	"testing"

	"crocus/internal/core"
	"crocus/internal/corpus"
	"crocus/internal/isle"
)

// renderedCexes collects the rendered counterexample per unit, aligned
// with flattenResults order.
func renderedCexes(rs []*core.RuleResult) []string {
	var out []string
	for _, rr := range rs {
		for _, io := range rr.Insts {
			if io.Counterexample != nil {
				out = append(out, io.Counterexample.Rendered)
			} else {
				out = append(out, "")
			}
		}
	}
	return out
}

// diffScheduledSerial sweeps prog serially (Parallelism 1) and
// unit-scheduled (Parallelism 4) with otherwise identical options and
// requires identical verdicts; under fresh it also requires identical
// counterexample bytes.
func diffScheduledSerial(t *testing.T, prog *isle.Program, fresh bool, budget int64) {
	t.Helper()
	mk := func(par int) ([]unitVerdict, []string) {
		v := core.New(prog, core.Options{
			PropagationBudget: budget,
			Parallelism:       par,
			FreshSolvers:      fresh,
		})
		rs, err := v.VerifyAll()
		if err != nil {
			t.Fatal(err)
		}
		return flattenResults(rs), renderedCexes(rs)
	}
	serial, serialCex := mk(1)
	sched, schedCex := mk(4)
	if len(serial) != len(sched) {
		t.Fatalf("unit count differs: serial %d, scheduled %d", len(serial), len(sched))
	}
	for i := range serial {
		if serial[i] != sched[i] {
			t.Errorf("verdicts diverge on %s:\n  serial:    %+v\n  scheduled: %+v",
				serial[i].name, serial[i], sched[i])
		}
		if fresh && serialCex[i] != schedCex[i] {
			t.Errorf("fresh counterexample bytes diverge on %s:\n  serial:\n%s\n  scheduled:\n%s",
				serial[i].name, serialCex[i], schedCex[i])
		}
	}
}

func TestScheduledMatchesSerialMidend(t *testing.T) {
	prog, err := corpus.LoadMidend()
	if err != nil {
		t.Fatal(err)
	}
	for _, fresh := range []bool{false, true} {
		diffScheduledSerial(t, prog, fresh, diffBudget)
	}
}

func TestScheduledMatchesSerialX64(t *testing.T) {
	skipUnderRace(t)
	prog, err := corpus.LoadX64()
	if err != nil {
		t.Fatal(err)
	}
	for _, fresh := range []bool{false, true} {
		diffScheduledSerial(t, prog, fresh, diffBudget)
	}
}
