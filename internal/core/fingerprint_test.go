package core

import (
	"testing"
	"testing/quick"

	"crocus/internal/smt"
)

// fingerprintRule computes the fingerprints of every applicable (rule,
// sig) unit of the named rule, keyed by the sig's rendering.
func fingerprintRule(t *testing.T, v *Verifier, name string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, r := range v.Prog.Rules {
		if r.Name != name {
			continue
		}
		for _, sig := range v.Sigs(r) {
			fp, ok, err := v.FingerprintInstantiation(r, sig)
			if err != nil {
				t.Fatalf("FingerprintInstantiation(%s, %s): %v", name, sig, err)
			}
			if !ok {
				continue
			}
			key := "<nil>"
			if sig != nil {
				key = sig.String()
			}
			out[key] = fp
		}
		return out
	}
	t.Fatalf("no rule named %s", name)
	return nil
}

const fpRules = `
	(rule fp_add
		(lower (has_type ty (iadd x y)))
		(a64_add ty x y))
	(rule fp_rotr
		(lower (rotr x y))
		(a64_rotr_64 x y))`

// TestFingerprintStableAcrossFreshVerifiers: the fingerprint must be a
// pure function of (rule text, instantiation, options): re-parsing the
// same sources into fresh programs — with fresh hash-cons tables and
// freshly randomized map iteration orders throughout analysis and
// monomorphization — must reproduce it bit for bit.
func TestFingerprintStableAcrossFreshVerifiers(t *testing.T) {
	ref := map[string]map[string]string{}
	for trial := 0; trial < 5; trial++ {
		v := buildVerifier(t, fpRules, Options{})
		for _, name := range []string{"fp_add", "fp_rotr"} {
			fps := fingerprintRule(t, v, name)
			if len(fps) == 0 {
				t.Fatalf("%s: no applicable units", name)
			}
			if trial == 0 {
				ref[name] = fps
				continue
			}
			if len(fps) != len(ref[name]) {
				t.Fatalf("%s: unit count changed between parses", name)
			}
			for sig, fp := range fps {
				if fp != ref[name][sig] {
					t.Fatalf("%s %s: fingerprint drifted across fresh verifiers:\n%s\n%s",
						name, sig, ref[name][sig], fp)
				}
			}
		}
	}
}

// TestFingerprintQuickRuleTextSensitivity is the testing/quick half of
// the stability property: for random width-literal pairs, two parses of
// the same rule text agree, and rule texts differing in the literal
// fingerprint differently.
func TestFingerprintQuickRuleTextSensitivity(t *testing.T) {
	widths := []int{8, 16, 32, 64}
	fpFor := func(w int) string {
		v := buildVerifier(t, ruleWithWidth(w), Options{})
		fps := fingerprintRule(t, v, "fp_lit")
		if len(fps) != 1 {
			t.Fatalf("width %d: applicable units = %d, want 1", w, len(fps))
		}
		for _, fp := range fps {
			return fp
		}
		return ""
	}
	prop := func(a, b uint8) bool {
		wa, wb := widths[int(a)%4], widths[int(b)%4]
		fa, fb := fpFor(wa), fpFor(wb)
		if fa2 := fpFor(wa); fa2 != fa {
			t.Logf("width %d: two parses disagree", wa)
			return false
		}
		if (wa == wb) != (fa == fb) {
			t.Logf("widths %d/%d: equal-fingerprint=%v", wa, wb, fa == fb)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func ruleWithWidth(w int) string {
	switch w {
	case 8:
		return `(rule fp_lit (lower (has_type 8 (iadd x y))) (a64_add 8 x y))`
	case 16:
		return `(rule fp_lit (lower (has_type 16 (iadd x y))) (a64_add 16 x y))`
	case 32:
		return `(rule fp_lit (lower (has_type 32 (iadd x y))) (a64_add 32 x y))`
	default:
		return `(rule fp_lit (lower (has_type 64 (iadd x y))) (a64_add 64 x y))`
	}
}

// TestFingerprintSensitivity: targeted single-edit mutations — RHS
// operand swap, custom verification condition, outcome-affecting options
// — must each change the fingerprint, while an untouched rule keeps its.
func TestFingerprintSensitivity(t *testing.T) {
	base := buildVerifier(t, fpRules, Options{})
	baseAdd := fingerprintRule(t, base, "fp_add")
	baseRotr := fingerprintRule(t, base, "fp_rotr")

	// Mutate fp_add's RHS: (a64_add ty x y) -> (a64_add ty x x).
	mutated := buildVerifier(t, `
		(rule fp_add
			(lower (has_type ty (iadd x y)))
			(a64_add ty x x))
		(rule fp_rotr
			(lower (rotr x y))
			(a64_rotr_64 x y))`, Options{})
	mutAdd := fingerprintRule(t, mutated, "fp_add")
	mutRotr := fingerprintRule(t, mutated, "fp_rotr")

	for sig, fp := range mutAdd {
		if fp == baseAdd[sig] {
			t.Errorf("fp_add %s: rule-text mutation did not change fingerprint", sig)
		}
	}
	for sig, fp := range mutRotr {
		if fp != baseRotr[sig] {
			t.Errorf("fp_rotr %s: fingerprint changed although the rule did not", sig)
		}
	}

	// Different instantiations of one rule are distinct units.
	seen := map[string]string{}
	for sig, fp := range baseAdd {
		if prev, dup := seen[fp]; dup {
			t.Errorf("instantiations %s and %s share a fingerprint", prev, sig)
		}
		seen[fp] = sig
	}

	// A custom verification condition changes the conditions, hence the
	// fingerprint. (A custom condition that builds the same formula as
	// the default would — correctly — keep it.)
	withVC := buildVerifier(t, fpRules, Options{})
	withVC.Opts.Custom = map[string]*CustomVC{
		"fp_add": {Condition: func(ctx *VCContext) (smt.TermID, error) {
			w := ctx.B.SortOf(ctx.LHSResult).Width
			two := ctx.B.BVConst(2, w)
			return ctx.B.Eq(ctx.RHSResult, ctx.B.BVMul(two, ctx.LHSResult)), nil
		}},
	}
	vcAdd := fingerprintRule(t, withVC, "fp_add")
	for sig, fp := range vcAdd {
		if fp == baseAdd[sig] {
			t.Errorf("fp_add %s: custom VC did not change fingerprint", sig)
		}
	}

	// Outcome-affecting options are part of the unit identity.
	distinct := buildVerifier(t, fpRules, Options{DistinctModels: true})
	dAdd := fingerprintRule(t, distinct, "fp_add")
	for sig, fp := range dAdd {
		if fp == baseAdd[sig] {
			t.Errorf("fp_add %s: DistinctModels did not change fingerprint", sig)
		}
	}
}

// TestFingerprintInapplicableUnit: a unit with no assignment is reported
// not-cacheable rather than hashed (it costs nothing to recompute).
func TestFingerprintInapplicableUnit(t *testing.T) {
	v := buildVerifier(t, `(rule fp_lit (lower (has_type 8 (iadd x y))) (a64_add 8 x y))`, Options{})
	rule := v.Prog.Rules[0]
	applicable := 0
	for _, sig := range v.Sigs(rule) {
		_, ok, err := v.FingerprintInstantiation(rule, sig)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			applicable++
		}
	}
	if applicable != 1 {
		t.Fatalf("applicable units = %d, want 1 (only (bv 8))", applicable)
	}
}
