package core

// Tests for the unit-scheduled sweep path: per-unit fault containment
// when a panic strikes on whichever worker (owner or thief) executes the
// unit, cancellation mid-sweep, an injected shared scheduler (the daemon
// configuration), and the sharded multi-process workflow
// (shard -> merge -> replay) proven equivalent to a single-process run.

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"crocus/internal/sched"
	"crocus/internal/smt"
	"crocus/internal/vcache"
)

// atomicPanicVC returns a custom VC whose Condition always panics. The
// call counter is atomic because under unit scheduling the Condition runs
// concurrently on several workers (unlike fault_test.go's serial panicVC).
func atomicPanicVC() (*CustomVC, *atomic.Int64) {
	var calls atomic.Int64
	return &CustomVC{
		Condition: func(ctx *VCContext) (smt.TermID, error) {
			calls.Add(1)
			panic("injected unit fault")
		},
	}, &calls
}

// totalUnits counts the verification units a sweep over v's program
// expands to.
func totalUnits(v *Verifier) int {
	n := 0
	for _, r := range v.Prog.Rules {
		n += len(v.Sigs(r))
	}
	return n
}

// TestScheduledPanicContainedPerUnit is the mid-steal containment
// differential (race-gated by running under -race in CI): a rule whose
// every unit panics — on whichever worker the steal landed it — must
// degrade to OutcomeError per unit, while every other rule's verdicts
// stay byte-identical to a serial clean sweep.
func TestScheduledPanicContainedPerUnit(t *testing.T) {
	clean := buildVerifier(t, faultRules, Options{})
	cleanRes, err := clean.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}

	vc, calls := atomicPanicVC()
	faulted := buildVerifier(t, faultRules, Options{
		Parallelism: 3,
		Custom:      map[string]*CustomVC{"iadd_base": vc},
	})
	units := len(faulted.Sigs(faulted.Prog.Rules[0]))
	if units < 2 {
		t.Fatalf("iadd_base expands to %d units; the mid-steal test needs several", units)
	}
	faultRes, err := faulted.VerifyAllContext(context.Background())
	if err != nil {
		t.Fatalf("faulted scheduled sweep must not error: %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("injected VC never ran")
	}
	if len(faultRes) != len(cleanRes) {
		t.Fatalf("%d results, want %d", len(faultRes), len(cleanRes))
	}
	for i, rr := range faultRes {
		if rr.Rule.Name == "iadd_base" {
			// Unit-level containment: every unit degrades independently,
			// so the rule carries one errored instantiation per unit —
			// not the serial path's single rule-level error.
			if rr.Outcome() != OutcomeError {
				t.Errorf("injected rule outcome = %v, want error", rr.Outcome())
			}
			if len(rr.Insts) != units {
				t.Errorf("injected rule has %d insts, want one per unit (%d)", len(rr.Insts), units)
			}
			for _, io := range rr.Insts {
				var pe *PanicError
				if io.Err == nil || !errors.As(io.Err, &pe) {
					t.Errorf("unit error = %v, want *PanicError", io.Err)
				}
			}
			continue
		}
		if !reflect.DeepEqual(outcomes(rr), outcomes(cleanRes[i])) {
			t.Errorf("%s verdicts diverged under injected fault: %v vs clean %v",
				rr.Rule.Name, outcomes(rr), outcomes(cleanRes[i]))
		}
	}
}

// TestScheduledCancelMidSweep: canceling a unit-scheduled sweep returns
// only completed rules, in source order, with ctx.Err(). Unlike the
// rule-parallel serial contract there is no guaranteed prefix — units
// complete out of order — but no partial rule may ever appear.
func TestScheduledCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	vc := &CustomVC{
		Condition: func(c *VCContext) (smt.TermID, error) {
			fired.Store(true)
			cancel()
			return c.B.Eq(c.LHSResult, c.RHSResult), nil
		},
	}
	v := buildVerifier(t, faultRules, Options{
		Parallelism: 4,
		Custom:      map[string]*CustomVC{"rotr_broken": vc},
	})
	out, err := v.VerifyAllContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !fired.Load() {
		t.Fatal("canceling VC never ran")
	}
	// Source order and completeness: every returned rule appears in
	// program order and carries a verdict for each of its units.
	last := -1
	idx := map[string]int{}
	for i, r := range v.Prog.Rules {
		idx[r.Name] = i
	}
	for _, rr := range out {
		i := idx[rr.Rule.Name]
		if i <= last {
			t.Errorf("results out of source order at %s", rr.Rule.Name)
		}
		last = i
		if rr.Rule.Name == "rotr_broken" {
			continue // the canceling rule may complete or not; either is fine
		}
		if want := len(v.Sigs(rr.Rule)); len(rr.Insts) != want {
			t.Errorf("%s returned partial: %d insts, want %d", rr.Rule.Name, len(rr.Insts), want)
		}
	}
}

// TestScheduledCancelBeforeSweep: a dead context yields no results from
// the scheduled path and the pool-submitted tasks fast-skip.
func TestScheduledCancelBeforeSweep(t *testing.T) {
	pool := sched.NewPool(2, nil)
	defer pool.Close()
	v := buildVerifier(t, faultRules, Options{Scheduler: pool})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := v.VerifyAllContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d results on a dead context", len(out))
	}
}

// TestInjectedSchedulerSharedAcrossSweeps is the daemon configuration:
// one long-lived pool, several verifiers scheduling onto it — including
// the single-rule VerifyRuleContext path — all matching serial verdicts.
func TestInjectedSchedulerSharedAcrossSweeps(t *testing.T) {
	serial := buildVerifier(t, faultRules, Options{})
	want, err := serial.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}

	pool := sched.NewPool(3, nil)
	defer pool.Close()
	for round := 0; round < 2; round++ {
		v := buildVerifier(t, faultRules, Options{Scheduler: pool})
		got, err := v.VerifyAll()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d results, want %d", round, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(outcomes(got[i]), outcomes(want[i])) {
				t.Errorf("round %d: %s verdicts diverged: %v vs serial %v",
					round, got[i].Rule.Name, outcomes(got[i]), outcomes(want[i]))
			}
		}
	}

	// Single-rule request path (what crocus-serve issues per request).
	v := buildVerifier(t, faultRules, Options{Scheduler: pool})
	rr := verifyOnly(t, v, "iadd_base")
	if !reflect.DeepEqual(outcomes(rr), outcomes(want[0])) {
		t.Errorf("VerifyRule on shared pool diverged: %v vs serial %v", outcomes(rr), outcomes(want[0]))
	}
}

// TestShardMergeReplayEquivalence runs the documented two-process
// workflow in-process: shard 0/2 and 1/2 with separate cache stores,
// vcache.Merge the stores, then replay the full corpus against the
// merged cache — verdicts must be byte-identical (including rendered
// counterexamples, under fresh solvers where models are deterministic)
// to a plain single-process sweep.
func TestShardMergeReplayEquivalence(t *testing.T) {
	// Fresh solvers make counterexample models independent of session
	// composition, so the comparison below can be byte-exact.
	base := Options{Parallelism: 2, FreshSolvers: true}

	single := buildVerifier(t, faultRules, base)
	want, err := single.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	wantUnits := totalUnits(single)

	dir := t.TempDir()
	shardDirs := []string{filepath.Join(dir, "c0"), filepath.Join(dir, "c1")}
	owned := 0
	for i, cdir := range shardDirs {
		opts := base
		opts.CacheDir = cdir
		opts.ShardIndex = i
		opts.ShardCount = 2
		v := buildVerifier(t, faultRules, opts)
		rs, err := v.VerifyAll()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		for _, rr := range rs {
			owned += len(rr.Insts)
		}
		if err := v.CloseCache(); err != nil {
			t.Fatalf("shard %d cache close: %v", i, err)
		}
	}
	// The shards partition the units: each is owned (and solved) exactly
	// once across the two processes.
	if owned != wantUnits {
		t.Fatalf("shards solved %d units between them, want the full corpus (%d)", owned, wantUnits)
	}

	merged := filepath.Join(dir, "merged")
	stats, err := vcache.Merge(merged, shardDirs...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(stats.Conflicts) != 0 {
		t.Fatalf("merge found %d conflicts between disjoint shards", len(stats.Conflicts))
	}
	// The union must cover every distinct fingerprint. (Distinct, not
	// total: units of different rules that monomorphize to the same VC —
	// iadd_base and iadd_again at overlapping widths — share a content
	// address and therefore one cache entry.)
	keys := map[string]bool{}
	for _, r := range single.Prog.Rules {
		for _, sig := range single.Sigs(r) {
			if key, ok, err := single.FingerprintInstantiation(r, sig); err != nil {
				t.Fatal(err)
			} else if ok {
				keys[key] = true
			}
		}
	}
	if stats.Added != len(keys) {
		t.Fatalf("merge added %d entries, want one per distinct fingerprint (%d)", stats.Added, len(keys))
	}

	opts := base
	opts.CacheDir = merged
	replay := buildVerifier(t, faultRules, opts)
	got, err := replay.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if st := replay.CacheStats(); st.Misses != 0 {
		t.Errorf("replay missed the merged cache %d times; the union is incomplete", st.Misses)
	}
	if len(got) != len(want) {
		t.Fatalf("replay returned %d rules, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Rule.Name != w.Rule.Name || len(g.Insts) != len(w.Insts) {
			t.Fatalf("replay rule %d = %s (%d insts), want %s (%d insts)",
				i, g.Rule.Name, len(g.Insts), w.Rule.Name, len(w.Insts))
		}
		for j := range g.Insts {
			gi, wi := g.Insts[j], w.Insts[j]
			if gi.Outcome != wi.Outcome || gi.Sig.String() != wi.Sig.String() {
				t.Errorf("%s unit %d: replay %v @ %s, single-process %v @ %s",
					g.Rule.Name, j, gi.Outcome, gi.Sig, wi.Outcome, wi.Sig)
			}
			gc, wc := gi.Counterexample, wi.Counterexample
			if (gc == nil) != (wc == nil) {
				t.Errorf("%s unit %d: counterexample presence differs", g.Rule.Name, j)
			} else if gc != nil && gc.Rendered != wc.Rendered {
				t.Errorf("%s unit %d: rendered counterexample differs:\n%s\nvs single-process:\n%s",
					g.Rule.Name, j, gc.Rendered, wc.Rendered)
			}
			if !reflect.DeepEqual(gi.DistinctInputs, wi.DistinctInputs) {
				t.Errorf("%s unit %d: distinct verdict differs", g.Rule.Name, j)
			}
		}
	}
}

// TestShardPartitionIsTotal: every unit's shard assignment is a valid
// index, so no unit can be orphaned by the partition.
func TestShardPartitionIsTotal(t *testing.T) {
	v := buildVerifier(t, faultRules, Options{})
	for _, r := range v.Prog.Rules {
		for _, sig := range v.Sigs(r) {
			key, ok, err := v.FingerprintInstantiation(r, sig)
			if err != nil {
				t.Fatalf("%s @ %s: %v", r.Name, sig, err)
			}
			if !ok {
				continue
			}
			for n := 2; n <= 5; n++ {
				if s := vcache.Shard(key, n); s < 0 || s >= n {
					t.Fatalf("Shard(%q, %d) = %d out of range", key, n, s)
				}
			}
		}
	}
}
