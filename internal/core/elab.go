package core

import (
	"fmt"
	"strings"

	"crocus/internal/isle"
	"crocus/internal/smt"
	"crocus/internal/spec"
)

// elaboration lowers one monomorphized rule (analysis + width/value
// assignment) into SMT: every term occurrence contributes its provide
// clauses to P and its require clauses to R, split by rule side (§3.2's
// P/R/A sets). The A sets — fresh variables for term results, wildcards,
// existential spec variables, and convto-widening — are free variables of
// the produced formulas.
type elaboration struct {
	ra *ruleAnalysis
	a  *assignment
	b  *smt.Builder

	// scope prefixes every SMT variable name this elaboration creates.
	// When a rule's instantiations share one builder (the incremental
	// session path), distinct scopes keep same-named ISLE variables of
	// different widths from colliding. The scope is derived purely from
	// the unit's content (signature + assignment index), never from sweep
	// position, so fingerprints stay deterministic.
	scope string

	nodeVal map[*isle.TermNode]smt.TermID
	varVal  map[string]smt.TermID // ISLE rule variables by name

	pLHS, rLHS, pRHS, rRHS []smt.TermID

	// LHSResult and RHSResult are the values of the rule's two sides.
	LHSResult, RHSResult smt.TermID

	// inputs are the BV-sorted LHS-bound variables, in binding order:
	// the i_0..i_{n-1} of Eq. 1/2 used for counterexamples and the
	// distinctness check.
	inputs []smt.TermID

	fresh int
}

// elaborate lowers one assignment into SMT terms. A nil builder gets a
// fresh one; passing a shared builder (with a unique scope) lets several
// assignments coexist for incremental solving.
func (v *Verifier) elaborate(ra *ruleAnalysis, a *assignment, b *smt.Builder, scope string) (*elaboration, error) {
	if b == nil {
		b = smt.NewBuilder()
	}
	el := &elaboration{
		ra:      ra,
		a:       a,
		b:       b,
		scope:   scope,
		nodeVal: map[*isle.TermNode]smt.TermID{},
		varVal:  map[string]smt.TermID{},
	}
	lhs, err := el.elabNode(ra.rule.LHS, true)
	if err != nil {
		return nil, err
	}
	el.LHSResult = lhs

	for _, il := range ra.rule.IfLets {
		ev, err := el.elabNode(il.Expr, true)
		if err != nil {
			return nil, err
		}
		pv, err := el.elabNode(il.Pat, true)
		if err != nil {
			return nil, err
		}
		if il.Pat.Kind != isle.NWildcard {
			el.pLHS = append(el.pLHS, el.b.Eq(pv, ev))
		}
	}

	rhs, err := el.elabNode(ra.rule.RHS, false)
	if err != nil {
		return nil, err
	}
	el.RHSResult = rhs

	for _, name := range ra.lhsVars {
		if t, ok := el.varVal[name]; ok && el.b.SortOf(t).Kind == smt.KindBV {
			el.inputs = append(el.inputs, t)
		}
	}
	return el, nil
}

// sortOf maps a typing slot to its concrete SMT sort under the assignment.
func (el *elaboration) sortOf(s tvar, pos fmt.Stringer) (smt.Sort, error) {
	switch el.ra.ts.kindOf(s) {
	case kBool:
		return smt.Bool, nil
	case kInt:
		return smt.Int, nil
	case kBV:
		w, ok := el.a.widthOf(s)
		if !ok {
			return smt.Sort{}, fmt.Errorf("%s: unresolved bitvector width", pos)
		}
		return smt.BV(w), nil
	default:
		// Kind never constrained: default to Int (bare literal positions).
		return smt.Int, nil
	}
}

func (el *elaboration) freshVar(prefix string, sort smt.Sort) smt.TermID {
	el.fresh++
	return el.b.Var(fmt.Sprintf("%s%%%s%d", el.scope, prefix, el.fresh), sort)
}

// slotIntVal returns the static integer value of an Int-kinded slot.
func (el *elaboration) slotIntVal(s tvar, what string) (int64, error) {
	iv, ok := el.a.intValOf(s)
	if !ok {
		return 0, fmt.Errorf("unresolved integer type value for %s", what)
	}
	return iv, nil
}

// elabNode produces the SMT value of a rule tree node and accumulates the
// P/R contributions of every term occurrence beneath it.
func (el *elaboration) elabNode(n *isle.TermNode, onLHS bool) (smt.TermID, error) {
	if t, ok := el.nodeVal[n]; ok {
		return t, nil
	}
	slot := el.ra.nodeSlot[n]
	t, err := el.elabNodeInner(n, slot, onLHS)
	if err != nil {
		return smt.NoTerm, err
	}
	el.nodeVal[n] = t
	return t, nil
}

func (el *elaboration) elabNodeInner(n *isle.TermNode, slot tvar, onLHS bool) (smt.TermID, error) {
	ts := el.ra.ts
	switch n.Kind {
	case isle.NConst:
		switch ts.kindOf(slot) {
		case kBool:
			return el.b.BoolConst(n.IntVal != 0), nil
		case kBV:
			w, ok := el.a.widthOf(slot)
			if !ok {
				return smt.NoTerm, fmt.Errorf("%s: constant with unresolved width", n.Pos)
			}
			return el.b.BVConst(uint64(n.IntVal), w), nil
		default:
			return el.b.IntConst(n.IntVal), nil
		}

	case isle.NVar:
		if ts.kindOf(slot) == kInt {
			iv, err := el.slotIntVal(slot, n.Name)
			if err != nil {
				return smt.NoTerm, fmt.Errorf("%s: %w", n.Pos, err)
			}
			return el.b.IntConst(iv), nil
		}
		if t, ok := el.varVal[n.Name]; ok {
			return t, nil
		}
		sort, err := el.sortOf(slot, n.Pos)
		if err != nil {
			return smt.NoTerm, err
		}
		t := el.b.Var(el.scope+sanitizeName(n.Name), sort)
		el.varVal[n.Name] = t
		return t, nil

	case isle.NWildcard:
		if ts.kindOf(slot) == kInt {
			if iv, ok := el.a.intValOf(slot); ok {
				return el.b.IntConst(iv), nil
			}
		}
		sort, err := el.sortOf(slot, n.Pos)
		if err != nil {
			return smt.NoTerm, err
		}
		return el.freshVar("wild", sort), nil

	case isle.NLet:
		for i := range n.Lets {
			b := &n.Lets[i]
			ev, err := el.elabNode(b.Expr, onLHS)
			if err != nil {
				return smt.NoTerm, err
			}
			el.varVal[b.Name] = ev
		}
		return el.elabNode(n.Body, onLHS)

	case isle.NApply:
		// Result value: a constant for Int-kinded results, a fresh SMT
		// variable otherwise (an element of the A sets).
		var res smt.TermID
		if ts.kindOf(slot) == kInt {
			iv, err := el.slotIntVal(slot, n.Name+" result")
			if err != nil {
				return smt.NoTerm, fmt.Errorf("%s: %w", n.Pos, err)
			}
			res = el.b.IntConst(iv)
		} else {
			sort, err := el.sortOf(slot, n.Pos)
			if err != nil {
				return smt.NoTerm, err
			}
			res = el.freshVar(n.Name+"_", sort)
		}
		args := make([]smt.TermID, len(n.Args))
		for i, an := range n.Args {
			av, err := el.elabNode(an, onLHS)
			if err != nil {
				return smt.NoTerm, err
			}
			args[i] = av
		}
		inst := el.findInstance(n)
		if inst == nil {
			return smt.NoTerm, fmt.Errorf("%s: internal: no spec instance for %s", n.Pos, n.Name)
		}
		vals := map[string]smt.TermID{"result": res}
		for i, name := range inst.spec.Args {
			vals[name] = args[i]
		}
		ictx := &instElab{el: el, inst: inst, vals: vals, onLHS: onLHS}
		for _, e := range inst.spec.Provide {
			t, err := ictx.elabExpr(e)
			if err != nil {
				return smt.NoTerm, err
			}
			if el.b.SortOf(t).Kind != smt.KindBool {
				return smt.NoTerm, fmt.Errorf("%s: provide clause of %s is not boolean", e.Pos, n.Name)
			}
			if onLHS {
				el.pLHS = append(el.pLHS, t)
			} else {
				el.pRHS = append(el.pRHS, t)
			}
		}
		for _, e := range inst.spec.Require {
			t, err := ictx.elabExpr(e)
			if err != nil {
				return smt.NoTerm, err
			}
			if el.b.SortOf(t).Kind != smt.KindBool {
				return smt.NoTerm, fmt.Errorf("%s: require clause of %s is not boolean", e.Pos, n.Name)
			}
			if onLHS {
				el.rLHS = append(el.rLHS, t)
			} else {
				el.rRHS = append(el.rRHS, t)
			}
		}
		return res, nil

	default:
		return smt.NoTerm, fmt.Errorf("%s: unexpected node kind", n.Pos)
	}
}

func (el *elaboration) findInstance(n *isle.TermNode) *specInstance {
	for _, inst := range el.ra.insts {
		if inst.node == n {
			return inst
		}
	}
	return nil
}

// instElab elaborates the annotation expressions of one spec instance.
type instElab struct {
	el    *elaboration
	inst  *specInstance
	vals  map[string]smt.TermID // spec arg/result/existential values
	onLHS bool
}

func (ie *instElab) slot(e *spec.Expr) tvar { return ie.inst.exprSlot[e] }

func (ie *instElab) kindOf(e *spec.Expr) kind {
	return ie.el.ra.ts.kindOf(ie.slot(e))
}

func (ie *instElab) widthOf(e *spec.Expr) (int, error) {
	w, ok := ie.el.a.widthOf(ie.slot(e))
	if !ok {
		return 0, fmt.Errorf("%s: unresolved width in spec for %s", e.Pos, ie.inst.term)
	}
	return w, nil
}

// elabExpr lowers an annotation expression to an SMT term, implementing
// the elaboration column of the Fig. 2 judgements.
func (ie *instElab) elabExpr(e *spec.Expr) (smt.TermID, error) {
	b := ie.el.b

	// Integer-kinded expressions are static after monomorphization.
	if ie.kindOf(e) == kInt || (ie.kindOf(e) == kUnknown && e.Kind == spec.ExprConst && !e.IsBool && e.BitWidth == 0) {
		iv, ok := ie.el.a.evalInt(ie.inst, e)
		if !ok {
			return smt.NoTerm, fmt.Errorf("%s: integer expression in spec for %s is not statically evaluable", e.Pos, ie.inst.term)
		}
		return b.IntConst(iv), nil
	}

	switch e.Kind {
	case spec.ExprVar:
		if t, ok := ie.vals[e.Name]; ok {
			return t, nil
		}
		// Existential annotation variable: one fresh SMT variable per
		// instance (scoped by occurrence index).
		sort, err := ie.el.sortOf(ie.inst.env[e.Name], e.Pos)
		if err != nil {
			return smt.NoTerm, err
		}
		t := ie.el.b.Var(fmt.Sprintf("%s%%%s_%s%d", ie.el.scope, sanitizeName(e.Name), ie.inst.term, ie.inst.seq), sort)
		ie.vals[e.Name] = t
		return t, nil

	case spec.ExprConst:
		switch {
		case e.IsBool:
			return b.BoolConst(e.BoolVal), nil
		default:
			w, err := ie.widthOf(e)
			if err != nil {
				return smt.NoTerm, err
			}
			return b.BVConst(uint64(e.IntVal), w), nil
		}

	case spec.ExprUnop:
		a, err := ie.elabExpr(e.Args[0])
		if err != nil {
			return smt.NoTerm, err
		}
		switch e.Op {
		case "!":
			return b.Not(a), nil
		case "~":
			return b.BVNot(a), nil
		default: // "-"
			return b.BVNeg(a), nil
		}

	case spec.ExprBinop:
		return ie.elabBinop(e)

	case spec.ExprConv:
		return ie.elabConv(e)

	case spec.ExprExtract:
		a, err := ie.elabExpr(e.Args[0])
		if err != nil {
			return smt.NoTerm, err
		}
		return b.Extract(e.Hi, e.Lo, a), nil

	case spec.ExprInt2BV:
		w, err := ie.widthOf(e)
		if err != nil {
			return smt.NoTerm, err
		}
		iv, ok := ie.el.a.evalInt(ie.inst, e.Args[1])
		if !ok {
			return smt.NoTerm, fmt.Errorf("%s: int2bv of non-static integer", e.Pos)
		}
		return b.BVConst(uint64(iv), w), nil

	case spec.ExprConcat:
		out := smt.NoTerm
		for _, arg := range e.Args {
			t, err := ie.elabExpr(arg)
			if err != nil {
				return smt.NoTerm, err
			}
			if out == smt.NoTerm {
				out = t
			} else {
				out = b.Concat(out, t) // earlier args are the high bits
			}
		}
		return out, nil

	case spec.ExprIf:
		c, err := ie.elabExpr(e.Args[0])
		if err != nil {
			return smt.NoTerm, err
		}
		t, err := ie.elabExpr(e.Args[1])
		if err != nil {
			return smt.NoTerm, err
		}
		f, err := ie.elabExpr(e.Args[2])
		if err != nil {
			return smt.NoTerm, err
		}
		return b.Ite(c, t, f), nil

	case spec.ExprSwitch:
		return ie.elabSwitch(e)

	case spec.ExprEnc:
		return ie.elabEnc(e)

	default:
		return smt.NoTerm, fmt.Errorf("%s: unsupported annotation expression", e.Pos)
	}
}

func (ie *instElab) elabBinop(e *spec.Expr) (smt.TermID, error) {
	b := ie.el.b
	a1, err := ie.elabExpr(e.Args[0])
	if err != nil {
		return smt.NoTerm, err
	}
	a2, err := ie.elabExpr(e.Args[1])
	if err != nil {
		return smt.NoTerm, err
	}
	switch e.Op {
	case "=":
		return b.Eq(a1, a2), nil
	case "!=":
		return b.Distinct(a1, a2), nil
	case "<":
		return b.IntLt(a1, a2), nil
	case "<=":
		return b.IntLe(a1, a2), nil
	case ">":
		return b.IntGt(a1, a2), nil
	case ">=":
		return b.IntGe(a1, a2), nil
	case "ult":
		return b.BVUlt(a1, a2), nil
	case "ulte":
		return b.BVUle(a1, a2), nil
	case "ugt":
		return b.BVUgt(a1, a2), nil
	case "ugte":
		return b.BVUge(a1, a2), nil
	case "slt":
		return b.BVSlt(a1, a2), nil
	case "slte":
		return b.BVSle(a1, a2), nil
	case "sgt":
		return b.BVSgt(a1, a2), nil
	case "sgte":
		return b.BVSge(a1, a2), nil
	case "+":
		return b.BVAdd(a1, a2), nil
	case "-":
		return b.BVSub(a1, a2), nil
	case "*":
		return b.BVMul(a1, a2), nil
	case "sdiv":
		return b.BVSDiv(a1, a2), nil
	case "udiv":
		return b.BVUDiv(a1, a2), nil
	case "srem":
		return b.BVSRem(a1, a2), nil
	case "urem":
		return b.BVURem(a1, a2), nil
	case "&":
		if b.SortOf(a1).Kind == smt.KindBool {
			return b.And(a1, a2), nil
		}
		return b.BVAnd(a1, a2), nil
	case "|":
		if b.SortOf(a1).Kind == smt.KindBool {
			return b.Or(a1, a2), nil
		}
		return b.BVOr(a1, a2), nil
	case "xor":
		if b.SortOf(a1).Kind == smt.KindBool {
			return b.XorB(a1, a2), nil
		}
		return b.BVXor(a1, a2), nil
	case "shl":
		return b.BVShl(a1, a2), nil
	case "shr":
		return b.BVLshr(a1, a2), nil
	case "ashr":
		return b.BVAshr(a1, a2), nil
	case "rotl":
		return b.BVRotl(a1, a2), nil
	case "rotr":
		return b.BVRotr(a1, a2), nil
	default:
		return smt.NoTerm, fmt.Errorf("%s: unsupported binary operator %s", e.Pos, e.Op)
	}
}

func (ie *instElab) elabConv(e *spec.Expr) (smt.TermID, error) {
	b := ie.el.b
	target, err := ie.widthOf(e)
	if err != nil {
		return smt.NoTerm, err
	}
	a, err := ie.elabExpr(e.Args[1])
	if err != nil {
		return smt.NoTerm, err
	}
	src := b.SortOf(a).Width
	switch e.Op {
	case "zeroext":
		return b.ZeroExt(target, a), nil
	case "signext":
		return b.SignExt(target, a), nil
	default: // convto, per Fig. 2's three judgements
		switch {
		case target == src:
			return a, nil
		case target < src:
			return b.Extract(target-1, 0, a), nil
		default:
			// Convto-Wide: the high bits are unspecified — a fresh
			// existential variable (Cranelift's register invariant, §3.1.3).
			highSort := smt.BV(target - src)
			high := ie.el.freshVar("convhi_"+ie.inst.term, highSort)
			return b.Concat(high, a), nil
		}
	}
}

func (ie *instElab) elabSwitch(e *spec.Expr) (smt.TermID, error) {
	b := ie.el.b
	scrut, err := ie.elabExpr(e.Args[0])
	if err != nil {
		return smt.NoTerm, err
	}
	n := len(e.Cases)
	// Build the ite chain from the last case (the chain's default) upward,
	// and collect the exhaustiveness condition (Fig. 2 Switch's A set).
	last, err := ie.elabExpr(e.Cases[n-1][1])
	if err != nil {
		return smt.NoTerm, err
	}
	out := last
	var covered []smt.TermID
	mLast, err := ie.elabExpr(e.Cases[n-1][0])
	if err != nil {
		return smt.NoTerm, err
	}
	covered = append(covered, b.Eq(scrut, mLast))
	for i := n - 2; i >= 0; i-- {
		m, err := ie.elabExpr(e.Cases[i][0])
		if err != nil {
			return smt.NoTerm, err
		}
		body, err := ie.elabExpr(e.Cases[i][1])
		if err != nil {
			return smt.NoTerm, err
		}
		cond := b.Eq(scrut, m)
		covered = append(covered, cond)
		out = b.Ite(cond, body, out)
	}
	exhaustive := b.Or(covered...)
	if ie.onLHS {
		ie.el.rLHS = append(ie.el.rLHS, exhaustive)
	} else {
		ie.el.rRHS = append(ie.el.rRHS, exhaustive)
	}
	return out, nil
}

func (ie *instElab) elabEnc(e *spec.Expr) (smt.TermID, error) {
	b := ie.el.b
	switch e.Op {
	case "cls", "clz", "rev", "popcnt":
		a, err := ie.elabExpr(e.Args[0])
		if err != nil {
			return smt.NoTerm, err
		}
		switch e.Op {
		case "cls":
			return b.CLS(a), nil
		case "clz":
			return b.CLZ(a), nil
		case "rev":
			return b.Rev(a), nil
		default:
			return b.Popcnt(a), nil
		}
	case "subs":
		// (subs w a b): the aarch64 NZCV flags of the w-bit subtraction
		// a-b, packed as a 4-bit vector N|Z|C|V (bit 3 = N).
		wv, ok := ie.el.a.evalInt(ie.inst, e.Args[0])
		if !ok {
			return smt.NoTerm, fmt.Errorf("%s: subs width is not static", e.Pos)
		}
		a, err := ie.elabExpr(e.Args[1])
		if err != nil {
			return smt.NoTerm, err
		}
		c, err := ie.elabExpr(e.Args[2])
		if err != nil {
			return smt.NoTerm, err
		}
		full := b.SortOf(a).Width
		w := int(wv)
		if w > full {
			return smt.NoTerm, fmt.Errorf("%s: subs width %d exceeds operand width %d", e.Pos, w, full)
		}
		aw, cw := a, c
		if w < full {
			aw = b.Extract(w-1, 0, a)
			cw = b.Extract(w-1, 0, c)
		}
		diff := b.BVSub(aw, cw)
		zero := b.BVConst(0, w)
		bit := func(cond smt.TermID) smt.TermID {
			return b.Ite(cond, b.BVConst(1, 1), b.BVConst(0, 1))
		}
		nf := bit(b.BVSlt(diff, zero))
		zf := bit(b.Eq(diff, zero))
		cf := bit(b.BVUge(aw, cw)) // carry = no borrow
		sa := b.BVSlt(aw, zero)
		sc := b.BVSlt(cw, zero)
		sd := b.BVSlt(diff, zero)
		vf := bit(b.And(b.XorB(sa, sc), b.XorB(sd, sa)))
		return b.Concat(nf, b.Concat(zf, b.Concat(cf, vf))), nil
	default:
		return smt.NoTerm, fmt.Errorf("%s: unsupported encoding %s", e.Pos, e.Op)
	}
}

// sanitizeName makes an ISLE identifier usable as an SMT variable name.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '.', '$':
			return '_'
		}
		return r
	}, s)
}
