package core

import (
	"fmt"

	"crocus/internal/isle"
	"crocus/internal/spec"
)

// specInstance is one use of an annotated term within a rule: the spec
// with its argument names bound to the typing slots of the actual
// arguments. Elaboration later turns each instance's provide/require
// expressions into SMT terms.
type specInstance struct {
	term  string
	spec  *spec.Spec
	onLHS bool // whether the term occurs on the LHS (incl. if-let guards)
	node  *isle.TermNode

	env      map[string]tvar     // spec arg / result / existential -> slot
	exprSlot map[*spec.Expr]tvar // typing slot of every subexpression
	seq      int                 // occurrence index, for fresh-name scoping
}

// deferred constraint kinds for pass 2 (§3.1.3 "second pass").
type deferKind int

const (
	// dWidthIsValue: the width of slot bv equals the integer value of
	// expr (from convto / int2bv / zeroext / signext width arguments).
	dWidthIsValue deferKind = iota
	// dIntEq: two integer expressions are equal (top-level Int equalities
	// in provide clauses, e.g. has_type's (= ty (widthof arg))).
	dIntEq
	// dWidthSum: the width of slot bv equals the sum of widths of the
	// operand expressions (concat).
	dWidthSum
	// dWidthAtLeast: slot bv is at least `minW` bits wide (extract bounds).
	dWidthAtLeast
	// dWidthGE: slot bv is at least as wide as slot bv2 (zeroext/signext
	// target vs source, per Fig. 2's N ≤ M side conditions).
	dWidthGE
)

type deferredCon struct {
	kind deferKind
	inst *specInstance
	bv   tvar         // dWidthIsValue / dWidthSum / dWidthAtLeast
	expr *spec.Expr   // dWidthIsValue: the Int expression
	a, b *spec.Expr   // dIntEq
	args []*spec.Expr // dWidthSum operands
	minW int          // dWidthAtLeast
	bv2  tvar         // dWidthGE: the smaller side
}

// ruleAnalysis is the per-rule typing context shared by both inference
// passes and by elaboration.
type ruleAnalysis struct {
	v    *Verifier
	rule *isle.Rule

	ts       *typeState
	nodeSlot map[*isle.TermNode]tvar
	varSlot  map[string]tvar // ISLE rule variables
	insts    []*specInstance
	deferred []deferredCon

	irTerm  *isle.TermNode // the instantiated instruction-selection root
	lhsRoot tvar
	rhsRoot tvar

	// lhsVars lists the LHS-bound ISLE variables in binding order; these
	// are the rule "inputs" for counterexamples and the distinctness check.
	lhsVars []string

	seq int
}

// analyzeRule builds the typing skeleton of a rule: slots for every node,
// spec instances for every term occurrence, and the pass-1 unification
// constraints (plus the deferred pass-2 constraints).
func (v *Verifier) analyzeRule(rule *isle.Rule) (*ruleAnalysis, error) {
	ra := &ruleAnalysis{
		v:        v,
		rule:     rule,
		ts:       newTypeState(),
		nodeSlot: map[*isle.TermNode]tvar{},
		varSlot:  map[string]tvar{},
	}
	ra.irTerm = v.Prog.FindIRTerm(rule.LHS)

	lhs, err := ra.walkNode(rule.LHS, true)
	if err != nil {
		return nil, err
	}
	ra.lhsRoot = lhs

	for _, il := range rule.IfLets {
		ev, err := ra.walkNode(il.Expr, true) // guards are assumed: LHS side
		if err != nil {
			return nil, err
		}
		pv, err := ra.walkNode(il.Pat, true)
		if err != nil {
			return nil, err
		}
		if err := ra.ts.union(ev, pv); err != nil {
			return nil, fmt.Errorf("%s: if-let pattern: %w", il.Pos, err)
		}
	}

	rhs, err := ra.walkNode(rule.RHS, false)
	if err != nil {
		return nil, err
	}
	ra.rhsRoot = rhs

	// The rewrite preserves the rule value: LHS and RHS roots share a type.
	if err := ra.ts.union(lhs, rhs); err != nil {
		return nil, fmt.Errorf("%s: rule sides: %w", rule.Pos, err)
	}
	return ra, nil
}

// walkNode assigns a slot to n (and descendants), instantiating specs for
// applications. onLHS tracks which side's P/R sets the instance feeds.
func (ra *ruleAnalysis) walkNode(n *isle.TermNode, onLHS bool) (tvar, error) {
	switch n.Kind {
	case isle.NWildcard:
		s := ra.ts.fresh()
		ra.nodeSlot[n] = s
		return s, nil

	case isle.NConst:
		s := ra.ts.fresh()
		ra.nodeSlot[n] = s
		if m, ok := ra.v.Prog.Models[n.Type]; ok {
			if err := ra.ts.applyMType(s, m); err != nil {
				return 0, fmt.Errorf("%s: constant: %w", n.Pos, err)
			}
		}
		return s, nil

	case isle.NVar:
		if s, ok := ra.varSlot[n.Name]; ok {
			ra.nodeSlot[n] = s
			return s, nil
		}
		s := ra.ts.fresh()
		ra.varSlot[n.Name] = s
		ra.nodeSlot[n] = s
		if onLHS {
			ra.lhsVars = append(ra.lhsVars, n.Name)
		}
		if m, ok := ra.v.Prog.Models[n.Type]; ok {
			if err := ra.ts.applyMType(s, m); err != nil {
				return 0, fmt.Errorf("%s: variable %s: %w", n.Pos, n.Name, err)
			}
		}
		return s, nil

	case isle.NLet:
		for i := range n.Lets {
			b := &n.Lets[i]
			es, err := ra.walkNode(b.Expr, onLHS)
			if err != nil {
				return 0, err
			}
			if _, dup := ra.varSlot[b.Name]; dup {
				return 0, fmt.Errorf("%s: let rebinds %q", n.Pos, b.Name)
			}
			ra.varSlot[b.Name] = es
		}
		bs, err := ra.walkNode(n.Body, onLHS)
		if err != nil {
			return 0, err
		}
		ra.nodeSlot[n] = bs
		return bs, nil

	case isle.NApply:
		d := ra.v.Prog.Decls[n.Name]
		if d == nil {
			return 0, fmt.Errorf("%s: unknown term %q", n.Pos, n.Name)
		}
		res := ra.ts.fresh()
		ra.nodeSlot[n] = res
		if m, ok := ra.v.Prog.Models[d.Ret]; ok {
			if err := ra.ts.applyMType(res, m); err != nil {
				return 0, fmt.Errorf("%s: %s result: %w", n.Pos, n.Name, err)
			}
		}
		argSlots := make([]tvar, len(n.Args))
		for i, a := range n.Args {
			as, err := ra.walkNode(a, onLHS)
			if err != nil {
				return 0, err
			}
			if m, ok := ra.v.Prog.Models[d.Params[i]]; ok {
				if err := ra.ts.applyMType(as, m); err != nil {
					return 0, fmt.Errorf("%s: %s argument %d: %w", n.Pos, n.Name, i, err)
				}
			}
			argSlots[i] = as
		}
		sp := ra.v.Prog.Specs[n.Name]
		if sp == nil {
			return 0, fmt.Errorf("%s: no annotation (spec) for term %q", n.Pos, n.Name)
		}
		inst := &specInstance{
			term:     n.Name,
			spec:     sp,
			onLHS:    onLHS,
			node:     n,
			env:      map[string]tvar{"result": res},
			exprSlot: map[*spec.Expr]tvar{},
			seq:      ra.seq,
		}
		ra.seq++
		for i, name := range sp.Args {
			inst.env[name] = argSlots[i]
		}
		ra.insts = append(ra.insts, inst)
		for _, e := range sp.Provide {
			if _, err := ra.typeSpecExpr(inst, e); err != nil {
				return 0, err
			}
			ra.collectIntEq(inst, e)
		}
		for _, e := range sp.Require {
			if _, err := ra.typeSpecExpr(inst, e); err != nil {
				return 0, err
			}
		}
		return res, nil

	default:
		return 0, fmt.Errorf("%s: unexpected node kind", n.Pos)
	}
}

// collectIntEq records top-level equalities from provide clauses as pass-2
// candidates; the pass-2 solver only acts on the ones whose operands turn
// out to be integer-kinded. These pin type variables like `ty` to concrete
// widths during monomorphization (e.g. has_type's (= ty (widthof arg))).
func (ra *ruleAnalysis) collectIntEq(inst *specInstance, e *spec.Expr) {
	if e.Kind == spec.ExprBinop && e.Op == "=" {
		ra.deferred = append(ra.deferred, deferredCon{
			kind: dIntEq, inst: inst, a: e.Args[0], b: e.Args[1],
		})
	}
}

// typeSpecExpr types an annotation expression within an instance,
// implementing the structural constraints of the Fig. 2 judgements.
func (ra *ruleAnalysis) typeSpecExpr(inst *specInstance, e *spec.Expr) (tvar, error) {
	if s, ok := inst.exprSlot[e]; ok {
		return s, nil
	}
	s, err := ra.typeSpecExprInner(inst, e)
	if err != nil {
		return 0, err
	}
	inst.exprSlot[e] = s
	return s, nil
}

func (ra *ruleAnalysis) typeSpecExprInner(inst *specInstance, e *spec.Expr) (tvar, error) {
	ts := ra.ts
	errAt := func(err error) error {
		if err == nil {
			return nil
		}
		return fmt.Errorf("%s: in spec for %s: %w", e.Pos, inst.term, err)
	}
	sub := func(x *spec.Expr) (tvar, error) { return ra.typeSpecExpr(inst, x) }

	switch e.Kind {
	case spec.ExprVar:
		if s, ok := inst.env[e.Name]; ok {
			return s, nil
		}
		// Existential variable local to the annotation (a member of the
		// paper's A sets); fresh slot and, later, a fresh SMT variable.
		s := ts.fresh()
		inst.env[e.Name] = s
		return s, nil

	case spec.ExprConst:
		s := ts.fresh()
		switch {
		case e.IsBool:
			return s, errAt(ts.setKind(s, kBool))
		case e.BitWidth > 0:
			return s, errAt(ts.setWidth(s, e.BitWidth))
		default:
			return s, nil // kind joined by context; defaults to Int
		}

	case spec.ExprUnop:
		a, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "!":
			if err := ts.setKind(a, kBool); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.setKind(s, kBool))
		case "~":
			if err := ts.setKind(a, kBV); err != nil {
				return 0, errAt(err)
			}
			fallthrough
		default: // "-" works at either kind
			s := ts.fresh()
			return s, errAt(ts.union(s, a))
		}

	case spec.ExprBinop:
		a, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		b, err := sub(e.Args[1])
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "=", "!=":
			if err := ts.union(a, b); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.setKind(s, kBool))
		case "<", "<=", ">", ">=":
			if err := ts.setKind(a, kInt); err != nil {
				return 0, errAt(err)
			}
			if err := ts.setKind(b, kInt); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.setKind(s, kBool))
		case "ult", "ulte", "ugt", "ugte", "slt", "slte", "sgt", "sgte":
			if err := ts.setKind(a, kBV); err != nil {
				return 0, errAt(err)
			}
			if err := ts.union(a, b); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.setKind(s, kBool))
		case "+", "-", "*":
			if err := ts.union(a, b); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.union(s, a))
		case "&", "|", "xor":
			// Overloaded: bitwise on bitvectors, logical on booleans.
			if err := ts.union(a, b); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.union(s, a))
		default: // bitvector-only binary operators
			if err := ts.setKind(a, kBV); err != nil {
				return 0, errAt(err)
			}
			if err := ts.union(a, b); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.union(s, a))
		}

	case spec.ExprConv: // zeroext / signext / convto
		wexp, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(wexp, kInt); err != nil {
			return 0, errAt(err)
		}
		a, err := sub(e.Args[1])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(a, kBV); err != nil {
			return 0, errAt(err)
		}
		s := ts.fresh()
		if err := ts.setKind(s, kBV); err != nil {
			return 0, errAt(err)
		}
		// Pin immediately for literal widths; defer otherwise.
		if e.Args[0].Kind == spec.ExprConst && !e.Args[0].IsBool && e.Args[0].BitWidth == 0 {
			if err := ts.setWidth(s, int(e.Args[0].IntVal)); err != nil {
				return 0, errAt(err)
			}
		} else {
			ra.deferred = append(ra.deferred, deferredCon{
				kind: dWidthIsValue, inst: inst, bv: s, expr: e.Args[0],
			})
		}
		if e.Op != "convto" {
			// zeroext/signext only widen; convto may also narrow.
			ra.deferred = append(ra.deferred, deferredCon{
				kind: dWidthGE, inst: inst, bv: s, bv2: a,
			})
		}
		return s, nil

	case spec.ExprExtract:
		a, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(a, kBV); err != nil {
			return 0, errAt(err)
		}
		ra.deferred = append(ra.deferred, deferredCon{
			kind: dWidthAtLeast, inst: inst, bv: a, minW: e.Hi + 1,
		})
		s := ts.fresh()
		return s, errAt(ts.setWidth(s, e.Hi-e.Lo+1))

	case spec.ExprInt2BV:
		wexp, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(wexp, kInt); err != nil {
			return 0, errAt(err)
		}
		a, err := sub(e.Args[1])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(a, kInt); err != nil {
			return 0, errAt(err)
		}
		s := ts.fresh()
		if err := ts.setKind(s, kBV); err != nil {
			return 0, errAt(err)
		}
		if e.Args[0].Kind == spec.ExprConst && !e.Args[0].IsBool && e.Args[0].BitWidth == 0 {
			if err := ts.setWidth(s, int(e.Args[0].IntVal)); err != nil {
				return 0, errAt(err)
			}
		} else {
			ra.deferred = append(ra.deferred, deferredCon{
				kind: dWidthIsValue, inst: inst, bv: s, expr: e.Args[0],
			})
		}
		return s, nil

	case spec.ExprBV2Int:
		a, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(a, kBV); err != nil {
			return 0, errAt(err)
		}
		s := ts.fresh()
		return s, errAt(ts.setKind(s, kInt))

	case spec.ExprWidthOf:
		a, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(a, kBV); err != nil {
			return 0, errAt(err)
		}
		s := ts.fresh()
		return s, errAt(ts.setKind(s, kInt))

	case spec.ExprConcat:
		var args []*spec.Expr
		for _, x := range e.Args {
			a, err := sub(x)
			if err != nil {
				return 0, err
			}
			if err := ts.setKind(a, kBV); err != nil {
				return 0, errAt(err)
			}
			args = append(args, x)
		}
		s := ts.fresh()
		if err := ts.setKind(s, kBV); err != nil {
			return 0, errAt(err)
		}
		ra.deferred = append(ra.deferred, deferredCon{
			kind: dWidthSum, inst: inst, bv: s, args: args,
		})
		return s, nil

	case spec.ExprIf:
		c, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		if err := ts.setKind(c, kBool); err != nil {
			return 0, errAt(err)
		}
		t, err := sub(e.Args[1])
		if err != nil {
			return 0, err
		}
		f, err := sub(e.Args[2])
		if err != nil {
			return 0, err
		}
		if err := ts.union(t, f); err != nil {
			return 0, errAt(err)
		}
		s := ts.fresh()
		return s, errAt(ts.union(s, t))

	case spec.ExprSwitch:
		sc, err := sub(e.Args[0])
		if err != nil {
			return 0, err
		}
		s := ts.fresh()
		for i, c := range e.Cases {
			m, err := sub(c[0])
			if err != nil {
				return 0, err
			}
			if err := ts.union(sc, m); err != nil {
				return 0, errAt(err)
			}
			body, err := sub(c[1])
			if err != nil {
				return 0, err
			}
			if i == 0 {
				if err := ts.union(s, body); err != nil {
					return 0, errAt(err)
				}
			} else if err := ts.union(s, body); err != nil {
				return 0, errAt(err)
			}
		}
		return s, nil

	case spec.ExprEnc:
		switch e.Op {
		case "subs":
			// (subs w a b): NZCV flags of the w-bit subtraction a-b.
			wexp, err := sub(e.Args[0])
			if err != nil {
				return 0, err
			}
			if err := ts.setKind(wexp, kInt); err != nil {
				return 0, errAt(err)
			}
			a, err := sub(e.Args[1])
			if err != nil {
				return 0, err
			}
			if err := ts.setKind(a, kBV); err != nil {
				return 0, errAt(err)
			}
			b, err := sub(e.Args[2])
			if err != nil {
				return 0, err
			}
			if err := ts.union(a, b); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.setWidth(s, 4))
		default: // cls / clz / rev / popcnt: width-preserving
			a, err := sub(e.Args[0])
			if err != nil {
				return 0, err
			}
			if err := ts.setKind(a, kBV); err != nil {
				return 0, errAt(err)
			}
			s := ts.fresh()
			return s, errAt(ts.union(s, a))
		}

	default:
		return 0, fmt.Errorf("%s: unsupported annotation expression", e.Pos)
	}
}
