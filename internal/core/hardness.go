package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Rule-hardness profiling: aggregate a sweep's per-rule cost — wall
// time, SAT search statistics, escalations, cache state — into a ranked
// profile naming the rules that buy the timeout tail. The profiler is a
// pure fold over RuleResults the sweep already produced; it cannot
// observe anything the verdict path didn't, so profiled runs verify
// byte-identically to plain runs (the differential tests assert this).

// RuleHardness is one rule's aggregated cost.
type RuleHardness struct {
	Rule   string `json:"rule"`
	WallNS int64  `json:"wall_ns"`

	// Outcome counts across the rule's instantiations.
	Insts        int `json:"insts"`
	Success      int `json:"success,omitempty"`
	Inapplicable int `json:"inapplicable,omitempty"`
	Failure      int `json:"failure,omitempty"`
	Timeout      int `json:"timeout,omitempty"`
	Error        int `json:"error,omitempty"`
	Cached       int `json:"cached,omitempty"`
	Skipped      int `json:"skipped,omitempty"`

	// SAT search cost summed over the rule's queries.
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Restarts     int64 `json:"restarts"`
	Queries      int64 `json:"queries"`

	// Escalations is the total timeout-ladder retries the rule consumed.
	Escalations int `json:"escalations,omitempty"`

	// Inprocessing / structural-hashing work.
	ElimVars         int64 `json:"elim_vars,omitempty"`
	Subsumed         int64 `json:"subsumed,omitempty"`
	Vivified         int64 `json:"vivified,omitempty"`
	StructHashMerged int64 `json:"structhash_merged,omitempty"`
}

// HardnessProfile is the sweep-level artifact: rules ranked hardest
// first, plus the sweep totals the ranking is read against.
type HardnessProfile struct {
	Corpus      string         `json:"corpus,omitempty"`
	TimeoutNS   int64          `json:"timeout_ns,omitempty"`
	Budget      int64          `json:"propagation_budget,omitempty"`
	Rules       []RuleHardness `json:"rules"`
	TotalWallNS int64          `json:"total_wall_ns"`
	TotalInsts  int            `json:"total_insts"`
	// TimeoutRules lists the rules with at least one timed-out
	// instantiation, hardest first — the tail open item #1 attacks next.
	TimeoutRules []string `json:"timeout_rules"`
}

// AddRule folds one rule's instantiation outcomes into the profile.
// Call Finalize after the last rule to rank and index the result.
func (p *HardnessProfile) AddRule(name string, insts []InstOutcome) {
	h := RuleHardness{Rule: name, Insts: len(insts)}
	for _, io := range insts {
		h.WallNS += io.Duration.Nanoseconds()
		switch io.Outcome {
		case OutcomeSuccess:
			h.Success++
		case OutcomeInapplicable:
			h.Inapplicable++
		case OutcomeFailure:
			h.Failure++
		case OutcomeTimeout:
			h.Timeout++
		case OutcomeError:
			h.Error++
		}
		if io.Cached {
			h.Cached++
		}
		if io.Skipped {
			h.Skipped++
		}
		h.Escalations += io.Escalations
		h.Propagations += io.Stats.Propagations
		h.Conflicts += io.Stats.Conflicts
		h.Decisions += io.Stats.Decisions
		h.Restarts += io.Stats.Restarts
		h.Queries += io.Stats.Queries
		h.ElimVars += io.Stats.ElimVars
		h.Subsumed += io.Stats.Subsumed
		h.Vivified += io.Stats.Vivified
		h.StructHashMerged += io.Stats.StructHashMerged
	}
	p.Rules = append(p.Rules, h)
	p.TotalWallNS += h.WallNS
	p.TotalInsts += h.Insts
}

// Finalize ranks the profile with a timeout-first ordering: any rule
// with timeouts sorts before every rule without, then by wall time
// descending — so the top of the table is exactly the tail worth
// attacking — and indexes the timeout rules.
func (p *HardnessProfile) Finalize() {
	sort.SliceStable(p.Rules, func(i, j int) bool {
		a, b := p.Rules[i], p.Rules[j]
		if (a.Timeout > 0) != (b.Timeout > 0) {
			return a.Timeout > 0
		}
		if a.WallNS != b.WallNS {
			return a.WallNS > b.WallNS
		}
		return a.Rule < b.Rule
	})
	p.TimeoutRules = nil
	for _, h := range p.Rules {
		if h.Timeout > 0 {
			p.TimeoutRules = append(p.TimeoutRules, h.Rule)
		}
	}
}

// ProfileRules folds a sweep's results into a finalized hardness
// profile.
func ProfileRules(results []*RuleResult) *HardnessProfile {
	p := &HardnessProfile{}
	for _, rr := range results {
		if rr == nil {
			continue
		}
		p.AddRule(rr.Rule.Name, rr.Insts)
	}
	p.Finalize()
	return p
}

// TimeoutInsts counts timed-out instantiations across the profile.
func (p *HardnessProfile) TimeoutInsts() int {
	n := 0
	for _, h := range p.Rules {
		n += h.Timeout
	}
	return n
}

// Render prints the top-K hardness table. Durations are exact
// nanosecond counts formatted as seconds; the table is advisory output
// on top of the byte-stable verdict lines, not part of them.
func (p *HardnessProfile) Render(topK int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== rule hardness (top %d of %d; %d timeout rules, %d timeout insts) ===\n",
		min(topK, len(p.Rules)), len(p.Rules), len(p.TimeoutRules), p.TimeoutInsts())
	fmt.Fprintf(&sb, "%-30s %9s %5s %5s %12s %10s %9s %8s %6s\n",
		"rule", "wall", "t/o", "esc", "props", "conflicts", "restarts", "queries", "cached")
	for i, h := range p.Rules {
		if i >= topK {
			break
		}
		fmt.Fprintf(&sb, "%-30s %8.2fs %5d %5d %12d %10d %9d %8d %3d/%-3d\n",
			h.Rule, time.Duration(h.WallNS).Seconds(), h.Timeout, h.Escalations,
			h.Propagations, h.Conflicts, h.Restarts, h.Queries, h.Cached, h.Insts)
	}
	return sb.String()
}

// WriteJSON writes the profile as indented JSON.
func (p *HardnessProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteJSONFile writes the profile atomically (temp + rename) to path.
func (p *HardnessProfile) WriteJSONFile(path string) error {
	tmp, err := os.CreateTemp(dirOfPath(path), ".hardness-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := p.WriteJSON(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOfPath(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "."
}
