package core

import (
	"errors"
	"fmt"
	"runtime/debug"

	"crocus/internal/isle"
)

// PanicError is the diagnostics bundle for a panic contained during rule
// verification: which rule and type instantiation were being verified,
// the pipeline configuration of the faulting attempt, the recovered
// value, and the goroutine stack at the panic site. Sweeps degrade the
// fault to an OutcomeError result instead of crashing (Crux treats
// solver-backend failure as a first-class, recoverable outcome).
type PanicError struct {
	// Rule is the name of the rule being verified.
	Rule string
	// Sig is the active type instantiation, or "" when the fault happened
	// before one was selected (e.g. during monomorphization).
	Sig string
	// Pipeline identifies the attempt's solve configuration:
	// "incremental" (rule sessions) or "fresh" (reference path).
	Pipeline string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *PanicError) Error() string {
	sig := ""
	if e.Sig != "" {
		sig = fmt.Sprintf(" [%s]", e.Sig)
	}
	return fmt.Sprintf("panic verifying %s%s (%s pipeline): %v", e.Rule, sig, e.Pipeline, e.Value)
}

func pipelineName(fresh bool) string {
	if fresh {
		return "fresh"
	}
	return "incremental"
}

func newPanicError(rule *isle.Rule, sig *isle.Sig, val any, fresh bool) *PanicError {
	pe := &PanicError{
		Rule:     rule.Name,
		Pipeline: pipelineName(fresh),
		Value:    val,
		Stack:    string(debug.Stack()),
	}
	if sig != nil {
		pe.Sig = sig.String()
	}
	return pe
}

func isPanicErr(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// erroredResult wraps a contained per-rule fault as a RuleResult with a
// single OutcomeError instantiation carrying the fault, so sweeps report
// the rule as errored instead of dying.
func erroredResult(rule *isle.Rule, err error) *RuleResult {
	return &RuleResult{Rule: rule, Insts: []InstOutcome{{Outcome: OutcomeError, Err: err}}}
}
