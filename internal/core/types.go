// Package core implements the Crocus verification engine (§3 of the
// paper): it combines ISLE rules with their annotations, runs the
// two-pass type inference and monomorphization of §3.1.3, lowers each
// precisely-typed rule to SMT verification conditions (§3.2), and decides
// the applicability (Eq. 1) and equivalence (Eq. 2/3) queries, lifting any
// counterexample model back into ISLE surface syntax.
package core

import (
	"fmt"

	"crocus/internal/isle"
)

// kind is the SMT kind of a typing slot.
type kind int8

const (
	kUnknown kind = iota
	kInt
	kBool
	kBV
)

func (k kind) String() string {
	switch k {
	case kInt:
		return "Int"
	case kBool:
		return "Bool"
	case kBV:
		return "BV"
	default:
		return "?"
	}
}

// tvar is a typing slot: a union-find node carrying an SMT kind and, for
// bitvectors, a width (0 = not yet resolved).
type tvar int32

// typeState is the union-find store used by type-inference pass 1
// (unification, §3.1.3 "first pass"). Kinds and concrete widths merge on
// union; a conflict is reported as an error, which the verifier interprets
// as "no valid typing for this instantiation".
type typeState struct {
	parent []tvar
	rank   []int8
	kinds  []kind
	widths []int
}

func newTypeState() *typeState { return &typeState{} }

func (ts *typeState) fresh() tvar {
	v := tvar(len(ts.parent))
	ts.parent = append(ts.parent, v)
	ts.rank = append(ts.rank, 0)
	ts.kinds = append(ts.kinds, kUnknown)
	ts.widths = append(ts.widths, 0)
	return v
}

func (ts *typeState) find(v tvar) tvar {
	for ts.parent[v] != v {
		ts.parent[v] = ts.parent[ts.parent[v]]
		v = ts.parent[v]
	}
	return v
}

// typeError is a unification failure; it marks a type instantiation as
// having no valid assignment rather than a hard error.
type typeError struct{ msg string }

func (e *typeError) Error() string { return e.msg }

func typeErrf(format string, args ...any) error {
	return &typeError{msg: fmt.Sprintf(format, args...)}
}

// IsTypeConflict reports whether err arose from inconsistent typing (as
// opposed to a malformed rule or annotation).
func IsTypeConflict(err error) bool {
	_, ok := err.(*typeError)
	return ok
}

func (ts *typeState) setKind(v tvar, k kind) error {
	r := ts.find(v)
	if ts.kinds[r] == kUnknown {
		ts.kinds[r] = k
		return nil
	}
	if ts.kinds[r] != k {
		return typeErrf("kind conflict: %s vs %s", ts.kinds[r], k)
	}
	return nil
}

func (ts *typeState) setWidth(v tvar, w int) error {
	r := ts.find(v)
	if err := ts.setKind(r, kBV); err != nil {
		return err
	}
	if ts.widths[r] == 0 {
		ts.widths[r] = w
		return nil
	}
	if ts.widths[r] != w {
		return typeErrf("width conflict: %d vs %d", ts.widths[r], w)
	}
	return nil
}

func (ts *typeState) union(a, b tvar) error {
	ra, rb := ts.find(a), ts.find(b)
	if ra == rb {
		return nil
	}
	// Merge metadata.
	ka, kb := ts.kinds[ra], ts.kinds[rb]
	switch {
	case ka == kUnknown:
		ka = kb
	case kb != kUnknown && ka != kb:
		return typeErrf("kind conflict: %s vs %s", ka, kb)
	}
	wa, wb := ts.widths[ra], ts.widths[rb]
	switch {
	case wa == 0:
		wa = wb
	case wb != 0 && wa != wb:
		return typeErrf("width conflict: %d vs %d", wa, wb)
	}
	if ts.rank[ra] < ts.rank[rb] {
		ra, rb = rb, ra
	}
	ts.parent[rb] = ra
	if ts.rank[ra] == ts.rank[rb] {
		ts.rank[ra]++
	}
	ts.kinds[ra] = ka
	ts.widths[ra] = wa
	return nil
}

func (ts *typeState) kindOf(v tvar) kind { return ts.kinds[ts.find(v)] }
func (ts *typeState) widthOf(v tvar) int { return ts.widths[ts.find(v)] }

// applyMType constrains slot v to the modeling sort m (polymorphic BV adds
// only the kind).
func (ts *typeState) applyMType(v tvar, m isle.MType) error {
	switch m.Kind {
	case isle.MInt:
		return ts.setKind(v, kInt)
	case isle.MBool:
		return ts.setKind(v, kBool)
	default:
		if err := ts.setKind(v, kBV); err != nil {
			return err
		}
		if m.Width != 0 {
			return ts.setWidth(v, m.Width)
		}
		return nil
	}
}
