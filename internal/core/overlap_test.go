package core

import (
	"testing"

	"crocus/internal/isle"
)

func ruleByName(t *testing.T, v *Verifier, name string) *isle.Rule {
	t.Helper()
	for _, r := range v.Prog.Rules {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no rule %q", name)
	return nil
}

const overlapRules = `
(decl imm_small (Value) Value)
(spec (imm_small x)
	(provide (= result x))
	(require (ulte (convto 64 x) #x00000000000000ff)))

(rule base
	(lower (has_type ty (iadd x y)))
	(a64_add ty x y))

(rule imm_form 2
	(lower (has_type ty (iadd x (imm_small y))))
	(a64_add ty x y))

(rule imm_form_same_prio
	(lower (has_type ty (iadd (imm_small x) y)))
	(a64_add ty x y))

(rule narrow_only
	(lower (has_type (fits_in_16 ty) (iadd x y)))
	(a64_add ty x y))

(rule rotr_any
	(lower (rotr x y))
	(a64_rotr_64 x y))
`

func TestOverlapPrioritized(t *testing.T) {
	v := buildVerifier(t, overlapRules, Options{})
	// base and imm_form both match (iadd x <small const>), but the
	// priorities differ: a normal ISLE arrangement.
	res, err := v.CheckOverlap(ruleByName(t, v, "base"), ruleByName(t, v, "imm_form"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != OverlapPrioritized {
		t.Fatalf("kind = %v, want prioritized", res.Kind)
	}
	if len(res.Witness) == 0 {
		t.Fatal("expected a witness input")
	}
}

func TestOverlapAmbiguous(t *testing.T) {
	v := buildVerifier(t, overlapRules, Options{})
	// base and imm_form_same_prio share priority 0 and both match
	// (iadd <small> y): a genuine ambiguity.
	res, err := v.CheckOverlap(ruleByName(t, v, "base"), ruleByName(t, v, "imm_form_same_prio"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != OverlapAmbiguous {
		t.Fatalf("kind = %v, want ambiguous", res.Kind)
	}
}

func TestOverlapDisjointByOpcode(t *testing.T) {
	v := buildVerifier(t, overlapRules, Options{})
	// iadd rules never overlap rotr rules: different structural heads.
	res, err := v.CheckOverlap(ruleByName(t, v, "base"), ruleByName(t, v, "rotr_any"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != OverlapNone {
		t.Fatalf("kind = %v, want none", res.Kind)
	}
}

func TestOverlapSameStructure(t *testing.T) {
	v := buildVerifier(t, overlapRules, Options{})
	// narrow_only overlaps base at narrow widths (same priority!): the
	// guard restricts but does not exclude.
	res, err := v.CheckOverlap(ruleByName(t, v, "base"), ruleByName(t, v, "narrow_only"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != OverlapAmbiguous {
		t.Fatalf("kind = %v, want ambiguous (same priority, common inputs)", res.Kind)
	}
}

func TestFindAmbiguousOverlaps(t *testing.T) {
	v := buildVerifier(t, overlapRules, Options{})
	out, err := v.FindAmbiguousOverlaps()
	if err != nil {
		t.Fatal(err)
	}
	ambiguous := 0
	for _, o := range out {
		if o.Kind == OverlapAmbiguous {
			ambiguous++
		}
	}
	if ambiguous < 2 {
		t.Fatalf("expected the two seeded ambiguities, got %d (%v)", ambiguous, out)
	}
	// Ambiguous results sort first.
	if out[0].Kind != OverlapAmbiguous {
		t.Fatal("ambiguous overlaps must sort first")
	}
}

func TestOverlapKindStrings(t *testing.T) {
	for _, k := range []OverlapKind{OverlapNone, OverlapPrioritized, OverlapAmbiguous, OverlapUnknown} {
		if k.String() == "" {
			t.Fatal("empty overlap kind string")
		}
	}
}
