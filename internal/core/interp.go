package core

import (
	"fmt"

	"crocus/internal/isle"
	"crocus/internal/smt"
)

// InterpResult is the outcome of concretely executing a rule on specific
// inputs (the paper's interpreter mode, §3.3: "Crocus can also test rules
// against specific concrete inputs ... allowing developers to test their
// annotations against their expectations").
type InterpResult struct {
	// Matches reports whether the rule's preconditions admit the inputs.
	Matches bool
	// LHSValue/RHSValue are the two sides' values when Matches.
	LHSValue smt.Value
	RHSValue smt.Value
	// Equal reports whether the sides agree (on the rule's result width).
	Equal bool
}

// Interpret concretely runs a rule at one type instantiation with the
// given inputs (keyed by the rule's LHS variable names). Variables not
// supplied are left free: the result then reflects some admissible
// completion, which is still useful for probing annotations.
func (v *Verifier) Interpret(rule *isle.Rule, sig *isle.Sig, inputs map[string]smt.Value) (*InterpResult, error) {
	ra, assigns, err := v.monomorphize(rule, sig)
	if err != nil {
		return nil, err
	}
	if len(assigns) == 0 {
		return &InterpResult{Matches: false}, nil
	}
	for _, a := range assigns {
		el, err := v.elaborate(ra, a, nil, "")
		if err != nil {
			return nil, err
		}
		b := el.b
		asserts := make([]smt.TermID, 0, len(el.pLHS)+len(el.rLHS)+len(el.pRHS)+len(inputs))
		asserts = append(asserts, el.pLHS...)
		asserts = append(asserts, el.rLHS...)
		asserts = append(asserts, el.pRHS...)
		ok := true
		for name, val := range inputs {
			t, bound := el.varVal[name]
			if !bound {
				return nil, fmt.Errorf("rule %s has no variable %q", rule.Name, name)
			}
			sort := b.SortOf(t)
			if sort.Kind != val.Sort.Kind || sort.Width != val.Sort.Width {
				ok = false // this assignment types the variable differently
				break
			}
			switch sort.Kind {
			case smt.KindBV:
				asserts = append(asserts, b.Eq(t, b.BVConst(val.Bits, sort.Width)))
			case smt.KindBool:
				asserts = append(asserts, b.Eq(t, b.BoolConst(val.Bits == 1)))
			default:
				return nil, fmt.Errorf("variable %q is integer-typed; pick the instantiation instead", name)
			}
		}
		if !ok {
			continue
		}
		res, err := smt.Check(b, asserts, v.solverConfig())
		if err != nil {
			return nil, err
		}
		if res.Status != smt.SatRes {
			continue // preconditions reject these inputs at this assignment
		}
		env := res.Model.Env()
		lv, err := b.Eval(el.LHSResult, env)
		if err != nil {
			return nil, err
		}
		rv, err := b.Eval(el.RHSResult, env)
		if err != nil {
			return nil, err
		}
		return &InterpResult{
			Matches:  true,
			LHSValue: lv,
			RHSValue: rv,
			Equal:    lv == rv,
		}, nil
	}
	return &InterpResult{Matches: false}, nil
}
