package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"crocus/internal/smt"
)

// faultRules is a small mixed corpus: a verifying rule, a failing rule
// (§2.3's broken rotr), and a second verifying rule.
const faultRules = `
	(rule iadd_base
		(lower (has_type ty (iadd x y)))
		(a64_add ty x y))
	(rule rotr_broken
		(lower (rotr x y))
		(a64_rotr_64 x y))
	(rule iadd_again
		(lower (has_type (fits_in_16 ty) (iadd x y)))
		(a64_add ty x y))`

// panicVC returns a custom verification condition whose Condition panics
// on every call after the first skip invocations.
func panicVC(skip int) *CustomVC {
	calls := 0
	return &CustomVC{
		Condition: func(ctx *VCContext) (smt.TermID, error) {
			calls++
			if calls > skip {
				panic("injected fault")
			}
			return ctx.B.Eq(ctx.LHSResult, ctx.RHSResult), nil
		},
	}
}

// TestPanicContainedAsError: a rule whose pipeline panics under both the
// incremental attempt and the fresh-solver retry is reported as
// OutcomeError carrying a *PanicError — not a crash, not an error return.
func TestPanicContainedAsError(t *testing.T) {
	v := buildVerifier(t, faultRules, Options{
		Custom: map[string]*CustomVC{"iadd_base": panicVC(0)},
	})
	rr := verifyOnly(t, v, "iadd_base")
	if rr.Outcome() != OutcomeError {
		t.Fatalf("outcome = %v, want error", rr.Outcome())
	}
	if len(rr.Insts) != 1 || rr.Insts[0].Err == nil {
		t.Fatalf("want one errored instantiation carrying the fault, got %+v", rr.Insts)
	}
	var pe *PanicError
	if !errors.As(rr.Insts[0].Err, &pe) {
		t.Fatalf("Err = %v, want *PanicError", rr.Insts[0].Err)
	}
	if pe.Rule != "iadd_base" || pe.Stack == "" {
		t.Errorf("diagnostics bundle incomplete: rule=%q stack len=%d", pe.Rule, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "injected fault") {
		t.Errorf("Error() = %q, want the panic value", pe.Error())
	}
	if rr.AllSuccess() {
		t.Error("AllSuccess must be false for an errored rule")
	}
}

// TestPanicRetriedFresh: a fault that only strikes the first attempt is
// healed by the fresh-solver reference retry, and the result says so.
func TestPanicRetriedFresh(t *testing.T) {
	// Four instantiations x one assignment each: the first Condition call
	// (incremental attempt, first instantiation) panics; every later call
	// (the fresh retry) succeeds.
	vc := &CustomVC{}
	calls := 0
	vc.Condition = func(ctx *VCContext) (smt.TermID, error) {
		calls++
		if calls == 1 {
			panic("transient fault")
		}
		return ctx.B.Eq(ctx.LHSResult, ctx.RHSResult), nil
	}
	v := buildVerifier(t, faultRules, Options{
		Custom: map[string]*CustomVC{"iadd_base": vc},
	})
	rr := verifyOnly(t, v, "iadd_base")
	if !rr.RetriedFresh {
		t.Fatal("RetriedFresh not set")
	}
	if rr.Outcome() != OutcomeSuccess {
		t.Fatalf("outcome = %v, want success from the fresh retry", rr.Outcome())
	}
}

// TestSweepFaultIsolationDifferential: injecting a panic into one rule
// must leave every other rule's verdict byte-identical to a clean sweep,
// and the sweep itself must complete (the acceptance differential).
func TestSweepFaultIsolationDifferential(t *testing.T) {
	for _, par := range []int{1, 3} {
		clean := buildVerifier(t, faultRules, Options{Parallelism: par})
		cleanRes, err := clean.VerifyAll()
		if err != nil {
			t.Fatal(err)
		}
		faulted := buildVerifier(t, faultRules, Options{
			Parallelism: par,
			Custom:      map[string]*CustomVC{"iadd_base": panicVC(0)},
		})
		faultRes, err := faulted.VerifyAllContext(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: faulted sweep must not error: %v", par, err)
		}
		if len(faultRes) != len(cleanRes) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(faultRes), len(cleanRes))
		}
		for i, rr := range faultRes {
			if rr.Rule.Name == "iadd_base" {
				if rr.Outcome() != OutcomeError {
					t.Errorf("parallelism %d: injected rule outcome = %v, want error", par, rr.Outcome())
				}
				continue
			}
			if !reflect.DeepEqual(outcomes(rr), outcomes(cleanRes[i])) {
				t.Errorf("parallelism %d: %s verdicts diverged: %v vs clean %v",
					par, rr.Rule.Name, outcomes(rr), outcomes(cleanRes[i]))
			}
		}
	}
}

// TestCancelMidSweep: a context canceled partway through the sweep
// returns the completed prefix in source order together with ctx.Err().
func TestCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// rotr_broken's custom VC pulls the plug: the first rule completes,
	// the canceling rule and everything after it do not.
	vc := &CustomVC{
		Condition: func(c *VCContext) (smt.TermID, error) {
			cancel()
			return c.B.Eq(c.LHSResult, c.RHSResult), nil
		},
	}
	v := buildVerifier(t, faultRules, Options{
		Custom: map[string]*CustomVC{"rotr_broken": vc},
	})
	out, err := v.VerifyAllContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 1 || out[0].Rule.Name != "iadd_base" {
		names := make([]string, len(out))
		for i, rr := range out {
			names[i] = rr.Rule.Name
		}
		t.Fatalf("partial results = %v, want exactly the completed prefix [iadd_base]", names)
	}
	if out[0].Outcome() != OutcomeSuccess {
		t.Errorf("completed rule outcome = %v, want success", out[0].Outcome())
	}
}

// TestCancelBeforeSweep: an already-canceled context yields no results
// and no work, sequentially and in parallel.
func TestCancelBeforeSweep(t *testing.T) {
	for _, par := range []int{1, 3} {
		v := buildVerifier(t, faultRules, Options{Parallelism: par})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		out, err := v.VerifyAllContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
		if len(out) != 0 {
			t.Fatalf("parallelism %d: got %d results on a dead context", par, len(out))
		}
	}
}

// TestEscalationLadder: a unit that times out at a starvation budget
// flips to success when the ladder grants an unlimited rung, and the
// retry count is recorded.
func TestEscalationLadder(t *testing.T) {
	base := buildVerifier(t, faultRules, Options{PropagationBudget: 1})
	rr := verifyOnly(t, base, "iadd_base")
	if rr.Outcome() != OutcomeTimeout {
		t.Skipf("base budget did not starve the unit (outcome %v); ladder test needs a timeout", rr.Outcome())
	}

	laddered := buildVerifier(t, faultRules, Options{
		PropagationBudget: 1,
		RetryBudgets:      []int64{0},
	})
	rr2 := verifyOnly(t, laddered, "iadd_base")
	if rr2.Outcome() != OutcomeSuccess {
		t.Fatalf("laddered outcome = %v, want success", rr2.Outcome())
	}
	esc := 0
	for _, io := range rr2.Insts {
		esc += io.Escalations
	}
	if esc == 0 {
		t.Error("no escalations recorded despite the ladder deciding the unit")
	}
}

// TestEscalationSkipsStingierRungs: rungs not more generous than the
// previous attempt are skipped, so a descending ladder degenerates to
// the base attempt.
func TestEscalationSkipsStingierRungs(t *testing.T) {
	v := buildVerifier(t, faultRules, Options{
		PropagationBudget: 1000,
		RetryBudgets:      []int64{500, 1000}, // neither exceeds the base
	})
	rr := verifyOnly(t, v, "iadd_base")
	for _, io := range rr.Insts {
		if io.Escalations != 0 {
			t.Fatalf("escalations = %d on a ladder with no generous rung", io.Escalations)
		}
	}
}

// TestLadderIgnoredWithoutBaseBudget: with an unlimited base budget the
// ladder must never engage (there is nothing to escalate from).
func TestLadderIgnoredWithoutBaseBudget(t *testing.T) {
	v := buildVerifier(t, faultRules, Options{RetryBudgets: []int64{5, 10}})
	rr := verifyOnly(t, v, "iadd_base")
	if rr.Outcome() != OutcomeSuccess {
		t.Fatalf("outcome = %v", rr.Outcome())
	}
	for _, io := range rr.Insts {
		if io.Escalations != 0 {
			t.Fatalf("escalations = %d without a finite base budget", io.Escalations)
		}
	}
}

// TestLadderMaxBudget pins the staleness bound the cache probe uses.
func TestLadderMaxBudget(t *testing.T) {
	cases := []struct {
		base  int64
		rungs []int64
		want  int64
	}{
		{0, nil, 0},
		{0, []int64{50}, 0}, // no base budget: unlimited already
		{100, nil, 100},
		{100, []int64{50}, 100}, // stingier rung does not lower the max
		{100, []int64{500, 900}, 900},
		{100, []int64{500, 0}, 0}, // unlimited final rung
	}
	for _, c := range cases {
		v := &Verifier{Opts: Options{PropagationBudget: c.base, RetryBudgets: c.rungs}}
		if got := v.ladderMaxBudget(); got != c.want {
			t.Errorf("ladderMaxBudget(base=%d, rungs=%v) = %d, want %d", c.base, c.rungs, got, c.want)
		}
	}
}
