package core

import (
	"strings"
	"testing"
	"time"

	"crocus/internal/isle"
	"crocus/internal/smt"
)

// testPrelude is a miniature version of the corpus prelude, built around
// the paper's running examples (§2.3, §3.1).
const testPrelude = `
(type Inst (primitive Inst))
(type InstOutput (primitive InstOutput))
(type Value (primitive Value))
(type Reg (primitive Reg))
(type Type (primitive Type))

(model Type Int)
(model Value (bv))
(model Inst (bv))
(model InstOutput (bv))
(model Reg (bv 64))

(decl lower (Inst) InstOutput)
(spec (lower arg) (provide (= result arg)))

(decl put_in_reg (Value) Reg)
(spec (put_in_reg arg) (provide (= result (convto 64 arg))))
(convert Value Reg put_in_reg)

(decl output_reg (Reg) InstOutput)
(spec (output_reg arg) (provide (= result (convto (widthof result) arg))))
(convert Reg InstOutput output_reg)

(decl has_type (Type Inst) Inst)
(spec (has_type ty arg) (provide (= result arg) (= ty (widthof arg))))

(decl fits_in_16 (Type) Type)
(spec (fits_in_16 arg) (provide (= result arg)) (require (<= arg 16)))

(form bin_8_to_64
	((args (bv 8) (bv 8)) (ret (bv 8)))
	((args (bv 16) (bv 16)) (ret (bv 16)))
	((args (bv 32) (bv 32)) (ret (bv 32)))
	((args (bv 64) (bv 64)) (ret (bv 64))))

(decl iadd (Value Value) Inst)
(spec (iadd x y) (provide (= result (+ x y))))
(instantiate iadd bin_8_to_64)

(decl rotr (Value Value) Inst)
(spec (rotr x y) (provide (= result (rotr x y))))
(instantiate rotr bin_8_to_64)

(decl a64_add (Type Reg Reg) Reg)
(spec (a64_add ty x y) (provide (= result (+ x y))))

;; The 64-bit-only ROR of the paper's broken first attempt (§2.3).
(decl a64_rotr_64 (Reg Reg) Reg)
(spec (a64_rotr_64 x y) (provide (= result (rotr x y))))

;; An 8-bit rotate helper with correct narrow semantics.
(decl small_rotr8 (Reg Reg) Reg)
(spec (small_rotr8 x y)
	(provide (= result
		(zeroext 64 (rotr (extract 7 0 x) (extract 7 0 y))))))
`

func buildVerifier(t *testing.T, rules string, opts Options) *Verifier {
	t.Helper()
	p := isle.NewProgram()
	if err := p.ParseFile("prelude.isle", testPrelude); err != nil {
		t.Fatal(err)
	}
	if err := p.ParseFile("rules.isle", rules); err != nil {
		t.Fatal(err)
	}
	if err := p.Typecheck(); err != nil {
		t.Fatal(err)
	}
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	return New(p, opts)
}

func verifyOnly(t *testing.T, v *Verifier, name string) *RuleResult {
	t.Helper()
	for _, r := range v.Prog.Rules {
		if r.Name == name {
			rr, err := v.VerifyRule(r)
			if err != nil {
				t.Fatalf("VerifyRule(%s): %v", name, err)
			}
			return rr
		}
	}
	t.Fatalf("no rule named %s", name)
	return nil
}

func outcomes(rr *RuleResult) []Outcome {
	out := make([]Outcome, len(rr.Insts))
	for i, io := range rr.Insts {
		out[i] = io.Outcome
	}
	return out
}

func TestVerifyIAddSuccessAllWidths(t *testing.T) {
	v := buildVerifier(t, `
		(rule iadd_base
			(lower (has_type ty (iadd x y)))
			(a64_add ty x y))`, Options{})
	rr := verifyOnly(t, v, "iadd_base")
	if len(rr.Insts) != 4 {
		t.Fatalf("instantiations = %d", len(rr.Insts))
	}
	for i, o := range outcomes(rr) {
		if o != OutcomeSuccess {
			t.Errorf("inst %d (%s): %v", i, rr.Insts[i].Sig, o)
		}
	}
	if !rr.AllSuccess() || rr.Outcome() != OutcomeSuccess {
		t.Fatal("aggregate should be success")
	}
}

// TestVerifyBrokenRotr reproduces §2.3: lowering every rotr to the 64-bit
// ROR is correct only at 64 bits and broken for narrow values.
func TestVerifyBrokenRotr(t *testing.T) {
	v := buildVerifier(t, `
		(rule rotr_broken
			(lower (rotr x y))
			(a64_rotr_64 x y))`, Options{})
	rr := verifyOnly(t, v, "rotr_broken")
	got := outcomes(rr)
	want := []Outcome{OutcomeFailure, OutcomeFailure, OutcomeFailure, OutcomeSuccess}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("width %d: got %v, want %v", []int{8, 16, 32, 64}[i], got[i], want[i])
		}
	}
	// The narrow failures must come with counterexamples.
	cex := rr.Insts[0].Counterexample
	if cex == nil {
		t.Fatal("missing counterexample")
	}
	if _, ok := cex.Inputs["x"]; !ok {
		t.Fatalf("counterexample inputs = %v", cex.Inputs)
	}
	if cex.LHSValue == cex.RHSValue {
		t.Fatal("counterexample values should differ")
	}
	if !strings.Contains(cex.Rendered, "=>") || !strings.Contains(cex.Rendered, "[x|") {
		t.Fatalf("rendered counterexample:\n%s", cex.Rendered)
	}
}

// TestVerifyCounterexampleIsGenuine replays the broken-rotr counterexample
// through the evaluator: the model must really distinguish the two sides.
func TestVerifyCounterexampleIsGenuine(t *testing.T) {
	v := buildVerifier(t, `
		(rule rotr_broken (lower (rotr x y)) (a64_rotr_64 x y))`, Options{})
	rr := verifyOnly(t, v, "rotr_broken")
	cex := rr.Insts[0].Counterexample
	x := cex.Inputs["x"]
	y := cex.Inputs["y"]
	// LHS semantics at 8 bits.
	b := smt.NewBuilder()
	lhs := b.BVRotr(b.BVConst(x.Bits, 8), b.BVConst(y.Bits, 8))
	lv, _ := b.BVVal(lhs)
	if lv != cex.LHSValue.Bits {
		t.Fatalf("LHS model value %#x, recomputed %#x", cex.LHSValue.Bits, lv)
	}
}

// TestVerifyFitsIn16Inapplicable reproduces the §3.1 partiality story:
// a fits_in_16-guarded rule is inapplicable at 32 and 64 bits.
func TestVerifyFitsIn16Inapplicable(t *testing.T) {
	v := buildVerifier(t, `
		(rule narrow_add
			(lower (has_type (fits_in_16 ty) (iadd x y)))
			(a64_add ty x y))`, Options{})
	rr := verifyOnly(t, v, "narrow_add")
	got := outcomes(rr)
	want := []Outcome{OutcomeSuccess, OutcomeSuccess, OutcomeInapplicable, OutcomeInapplicable}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("width %d: got %v, want %v", []int{8, 16, 32, 64}[i], got[i], want[i])
		}
	}
}

// TestVerifyLiteralTypePattern checks constant Type arguments: a rule
// matching only I8 via (has_type 8 ...) is inapplicable elsewhere.
func TestVerifyLiteralTypePattern(t *testing.T) {
	v := buildVerifier(t, `
		(rule rotr8_only
			(lower (has_type 8 (rotr x y)))
			(small_rotr8 x y))`, Options{})
	rr := verifyOnly(t, v, "rotr8_only")
	got := outcomes(rr)
	want := []Outcome{OutcomeSuccess, OutcomeInapplicable, OutcomeInapplicable, OutcomeInapplicable}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("width %d: got %v, want %v", []int{8, 16, 32, 64}[i], got[i], want[i])
		}
	}
}

// TestVerifyRequireCheckedOnRHS: a require on an RHS term must be proven,
// not assumed (§3.1.1). small_rotr-style precondition: using a helper that
// requires zero-extended inputs without zero-extending must fail.
func TestVerifyRequireCheckedOnRHS(t *testing.T) {
	extra := `
		(decl needs_zext8 (Reg) Reg)
		(spec (needs_zext8 x)
			(provide (= result x))
			(require (= (extract 63 8 x) #x00000000000000)))
		(rule no_zext
			(lower (has_type 8 (iadd x y)))
			(needs_zext8 (a64_add 8 x y)))`
	v := buildVerifier(t, extra, Options{})
	rr := verifyOnly(t, v, "no_zext")
	if rr.Insts[0].Outcome != OutcomeFailure {
		t.Fatalf("outcome = %v, want failure (RHS require unproven)", rr.Insts[0].Outcome)
	}
}

// TestVerifyDistinctModels reproduces the §4.4.2 signal: a rule whose
// guard admits exactly one input model is flagged by the distinct-models
// check.
func TestVerifyDistinctModels(t *testing.T) {
	extra := `
		(decl only_zero (Value) Value)
		(spec (only_zero x)
			(provide (= result x))
			(require (= x (convto (widthof x) #x0000000000000000))))
		(rule zero_add
			(lower (has_type ty (iadd (only_zero x) y)))
			(a64_add ty y y))`
	v := buildVerifier(t, extra, Options{DistinctModels: true})
	rr := verifyOnly(t, v, "zero_add")
	io := rr.Insts[0]
	if io.DistinctInputs == nil {
		t.Fatal("distinctness check did not run")
	}
	// x is pinned to zero but y is free: the check must still find a
	// second model overall... The check requires EVERY input to differ, so
	// with x pinned it reports non-distinct.
	if *io.DistinctInputs {
		t.Fatal("expected the single-model warning (x can only be zero)")
	}

	// A normal rule has many models.
	v2 := buildVerifier(t, `
		(rule iadd_base (lower (has_type ty (iadd x y))) (a64_add ty x y))`,
		Options{DistinctModels: true})
	rr2 := verifyOnly(t, v2, "iadd_base")
	if rr2.Insts[0].DistinctInputs == nil || !*rr2.Insts[0].DistinctInputs {
		t.Fatal("iadd should have distinct models")
	}
}

// TestVerifyIfLetGuard checks if-let value constraints: a rule guarded on
// a constant comparison outcome.
func TestVerifyIfLetGuard(t *testing.T) {
	extra := `
		(type u64 (primitive u64))
		(model u64 (bv 64))
		(decl u64_eq_total (u64 u64) u64)
		(spec (u64_eq_total x y)
			(provide (= result (if (= x y) #x0000000000000001 #x0000000000000000))))
		(rule misguarded
			(lower (has_type ty (iadd x y)))
			(if (u64_eq_total 1 2))
			(a64_add ty x x))
		(rule guarded
			(lower (has_type ty (iadd x y)))
			(if-let #x0000000000000001 (u64_eq_total 1 2))
			(a64_add ty x x))`
	v := buildVerifier(t, extra, Options{})
	// The plain `if` with a total guard is vacuous (the §4.4.4 bug
	// pattern): the rule is considered matching, and x+x != x+y fails.
	rr := verifyOnly(t, v, "misguarded")
	if rr.Insts[0].Outcome != OutcomeFailure {
		t.Fatalf("misguarded outcome = %v, want failure", rr.Insts[0].Outcome)
	}
	// if-let on the result value makes the guard real: 1 != 2 can never
	// produce 1, so the rule never matches.
	rr = verifyOnly(t, v, "guarded")
	if rr.Insts[0].Outcome != OutcomeInapplicable {
		t.Fatalf("guarded outcome = %v, want inapplicable", rr.Insts[0].Outcome)
	}
}

// TestVerifyTimeout forces an Unknown outcome via a tiny propagation
// budget on a multiplication rule. The spec pair encodes distributivity
// (x*y + x vs x*(y+1)): a correct rule whose UNSAT proof requires
// reasoning about a full 64-bit multiplier, far beyond any small budget
// no matter how good the encoding gets.
func TestVerifyTimeout(t *testing.T) {
	extra := `
		(decl imul (Value Value) Inst)
		(spec (imul x y) (provide (= result (+ (* x y) x))))
		(instantiate imul ((args (bv 64) (bv 64)) (ret (bv 64))))
		(decl a64_madd_hard (Type Reg Reg) Reg)
		(spec (a64_madd_hard ty x y) (provide (= result (* x (+ y #x0000000000000001)))))
		(rule hard_mul
			(lower (has_type ty (imul x y)))
			(a64_madd_hard ty x y))`
	v := buildVerifier(t, extra, Options{PropagationBudget: 2000})
	rr := verifyOnly(t, v, "hard_mul")
	if rr.Insts[0].Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %v, want timeout", rr.Insts[0].Outcome)
	}
}

// TestVerifyCustomVC: a rule that is wrong under strict equality but right
// under a custom condition (§3.2.2's FlagsAndCC story in miniature).
func TestVerifyCustomVC(t *testing.T) {
	extra := `
		(decl double_it (Type Reg Reg) Reg)
		(spec (double_it ty x y) (provide (= result (+ (+ x y) (+ x y)))))
		(rule doubled
			(lower (has_type 64 (iadd x y)))
			(double_it 64 x y))`
	v := buildVerifier(t, extra, Options{})
	rr := verifyOnly(t, v, "doubled")
	if rr.Insts[3].Outcome != OutcomeFailure {
		t.Fatalf("strict equality: %v, want failure", rr.Insts[3].Outcome)
	}
	// Custom condition: RHS = 2*LHS.
	v.Opts.Custom = map[string]*CustomVC{
		"doubled": {
			Condition: func(ctx *VCContext) (smt.TermID, error) {
				two := ctx.B.BVConst(2, 64)
				return ctx.B.Eq(ctx.RHSResult, ctx.B.BVMul(two, ctx.LHSResult)), nil
			},
		},
	}
	rr = verifyOnly(t, v, "doubled")
	if rr.Insts[3].Outcome != OutcomeSuccess {
		t.Fatalf("custom VC: %v, want success", rr.Insts[3].Outcome)
	}
}

// TestVerifySwitchExhaustivenessChecked: a switch on the RHS whose cases
// do not cover the scrutinee is a verification failure (§3.1, "switch also
// adds a verification condition that enforces that its branches are
// exhaustive").
func TestVerifySwitchExhaustiveness(t *testing.T) {
	extra := `
		(decl add_3264 (Type Reg Reg) Reg)
		(spec (add_3264 ty x y)
			(provide (= result (switch ty
				(32 (+ x y))
				(64 (+ x y))))))
		(rule switch_add
			(lower (has_type ty (iadd x y)))
			(add_3264 ty x y))`
	v := buildVerifier(t, extra, Options{})
	rr := verifyOnly(t, v, "switch_add")
	got := outcomes(rr)
	want := []Outcome{OutcomeFailure, OutcomeFailure, OutcomeSuccess, OutcomeSuccess}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("width %d: got %v, want %v", []int{8, 16, 32, 64}[i], got[i], want[i])
		}
	}
}

// TestVerifyLetAndNegation verifies the paper's rotl-via-neg pattern at a
// fixed width: rotl(x,y) = rotr(x, 0-y) (§2.3).
func TestVerifyLetAndNegation(t *testing.T) {
	extra := `
		(decl rotl (Value Value) Inst)
		(spec (rotl x y) (provide (= result (rotl x y))))
		(instantiate rotl ((args (bv 64) (bv 64)) (ret (bv 64))))
		(decl a64_sub (Type Reg Reg) Reg)
		(spec (a64_sub ty x y) (provide (= result (- x y))))
		(decl zero () Reg)
		(spec (zero) (provide (= result #x0000000000000000)))
		(rule rotl64
			(lower (has_type 64 (rotl x y)))
			(let ((neg_y Reg (a64_sub 64 (zero) y)))
				(a64_rotr_64 x neg_y)))`
	v := buildVerifier(t, extra, Options{})
	rr := verifyOnly(t, v, "rotl64")
	if rr.Insts[0].Outcome != OutcomeSuccess {
		cex := ""
		if rr.Insts[0].Counterexample != nil {
			cex = rr.Insts[0].Counterexample.Rendered
		}
		t.Fatalf("rotl64 = %v\n%s", rr.Insts[0].Outcome, cex)
	}
}

func TestVerifyAllAndOutcomeStrings(t *testing.T) {
	v := buildVerifier(t, `
		(rule iadd_base (lower (has_type ty (iadd x y))) (a64_add ty x y))`, Options{})
	rrs, err := v.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 {
		t.Fatalf("rules = %d", len(rrs))
	}
	for _, s := range []string{OutcomeSuccess.String(), OutcomeFailure.String(), OutcomeInapplicable.String(), OutcomeTimeout.String()} {
		if s == "" {
			t.Fatal("empty outcome string")
		}
	}
	if len(v.SortedRuleNames()) != 1 {
		t.Fatal("sorted names")
	}
}

// TestVerifyAllParallelMatchesSequential: concurrent verification must
// produce the same outcomes in the same order as sequential.
func TestVerifyAllParallelMatchesSequential(t *testing.T) {
	src := `
		(rule r1 (lower (has_type ty (iadd x y))) (a64_add ty x y))
		(rule r2 (lower (rotr x y)) (a64_rotr_64 x y))
		(rule r3 (lower (has_type (fits_in_16 ty) (iadd x y))) (a64_add ty x y))`
	seq := buildVerifier(t, src, Options{})
	par := buildVerifier(t, src, Options{Parallelism: 4})
	srs, err := seq.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	prs, err := par.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(srs) != len(prs) {
		t.Fatalf("lengths differ: %d vs %d", len(srs), len(prs))
	}
	for i := range srs {
		if srs[i].Rule.Name != prs[i].Rule.Name {
			t.Fatalf("order differs at %d: %s vs %s", i, srs[i].Rule.Name, prs[i].Rule.Name)
		}
		if srs[i].Outcome() != prs[i].Outcome() {
			t.Fatalf("%s: %v vs %v", srs[i].Rule.Name, srs[i].Outcome(), prs[i].Outcome())
		}
		for j := range srs[i].Insts {
			if srs[i].Insts[j].Outcome != prs[i].Insts[j].Outcome {
				t.Fatalf("%s inst %d: %v vs %v", srs[i].Rule.Name, j,
					srs[i].Insts[j].Outcome, prs[i].Insts[j].Outcome)
			}
		}
	}
}
