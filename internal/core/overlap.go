package core

import (
	"fmt"
	"sort"
	"strings"

	"crocus/internal/isle"
	"crocus/internal/smt"
)

// Overlap checking — the rule-priority reasoning the paper lists as
// future work (§3.3: "Support for verifying properties over multiple
// rules (e.g., reasoning about rule priorities) is future work", §6).
//
// Two rules with the same left-hand-side root overlap when some input
// matches both. Overlap is fine when the rules carry different priorities
// (ISLE picks the higher one deterministically); same-priority overlap is
// an ambiguity: which rule fires depends on internal ordering, so a
// semantic difference between the two right-hand sides becomes a latent
// bug. The checker unifies the two patterns structurally, conjoins both
// sides' preconditions over the shared subject, and asks the solver
// whether a common match exists.
//
// Note that an overlap between two rules that BOTH verified is benign by
// construction: each right-hand side is proven equal to the same
// left-hand-side semantics, so they agree on every common input. Overlap
// ambiguity is therefore most valuable exactly where verification is
// incomplete (timeouts, unannotated rules).

// OverlapKind classifies a rule-pair relationship.
type OverlapKind int

// Overlap classifications.
const (
	// OverlapNone: no input matches both rules.
	OverlapNone OverlapKind = iota
	// OverlapPrioritized: inputs match both, and distinct priorities
	// disambiguate.
	OverlapPrioritized
	// OverlapAmbiguous: inputs match both at the SAME priority.
	OverlapAmbiguous
	// OverlapUnknown: the solver exhausted its budget.
	OverlapUnknown
)

func (k OverlapKind) String() string {
	switch k {
	case OverlapNone:
		return "none"
	case OverlapPrioritized:
		return "prioritized"
	case OverlapAmbiguous:
		return "AMBIGUOUS"
	default:
		return "unknown"
	}
}

// OverlapResult reports the relationship of one rule pair.
type OverlapResult struct {
	RuleA, RuleB string
	Kind         OverlapKind
	// Witness holds a common matching input (variable values of rule A)
	// when an overlap was found.
	Witness map[string]smt.Value
}

// CheckOverlap decides whether two rules can match a common input. Both
// rules must share their LHS root term (e.g. both lower rules).
func (v *Verifier) CheckOverlap(a, b *isle.Rule) (*OverlapResult, error) {
	res := &OverlapResult{RuleA: a.Name, RuleB: b.Name, Kind: OverlapNone}
	if a.LHS.Name != b.LHS.Name {
		return res, nil
	}
	// Rename rule B's variables so the shared analysis cannot conflate
	// bindings across rules.
	bLHS := renameVars(b.LHS, "|b")
	var bIfLets []*isle.IfLet
	for _, il := range b.IfLets {
		bIfLets = append(bIfLets, &isle.IfLet{
			Pat:  renameVars(il.Pat, "|b"),
			Expr: renameVars(il.Expr, "|b"),
			Pos:  il.Pos,
		})
	}

	pairs, disjoint := unifyTrees(v.Prog, a.LHS, bLHS)
	if disjoint {
		return res, nil
	}

	// Build one analysis over both patterns.
	ra := &ruleAnalysis{
		v:        v,
		rule:     a,
		ts:       newTypeState(),
		nodeSlot: map[*isle.TermNode]tvar{},
		varSlot:  map[string]tvar{},
	}
	ra.irTerm = v.Prog.FindIRTerm(a.LHS)
	sa, err := ra.walkNode(a.LHS, true)
	if err != nil {
		return nil, err
	}
	for _, il := range a.IfLets {
		ev, err := ra.walkNode(il.Expr, true)
		if err != nil {
			return nil, err
		}
		pv, err := ra.walkNode(il.Pat, true)
		if err != nil {
			return nil, err
		}
		if err := ra.ts.union(ev, pv); err != nil {
			return res, nil
		}
	}
	sb, err := ra.walkNode(bLHS, true)
	if err != nil {
		return nil, err
	}
	for _, il := range bIfLets {
		ev, err := ra.walkNode(il.Expr, true)
		if err != nil {
			return nil, err
		}
		pv, err := ra.walkNode(il.Pat, true)
		if err != nil {
			return nil, err
		}
		if err := ra.ts.union(ev, pv); err != nil {
			return res, nil
		}
	}
	if err := ra.ts.union(sa, sb); err != nil {
		return res, nil // incompatible types: cannot overlap
	}
	// Unified positions share a type.
	typeOK := true
	for _, p := range pairs {
		if err := ra.ts.union(ra.nodeSlot[p[0]], ra.nodeSlot[p[1]]); err != nil {
			typeOK = false
			break
		}
	}
	if !typeOK {
		return res, nil
	}

	assigns, err := v.inferAssignments(ra)
	if err != nil {
		return nil, fmt.Errorf("overlap %s/%s: %w", a.Name, b.Name, err)
	}

	for _, asg := range assigns {
		// Elaborate exactly the nodes the overlap analysis typed: both
		// patterns and both guard lists (v.elaborate would also walk rule
		// A's right-hand side, which this analysis does not cover).
		el := &elaboration{
			ra:      ra,
			a:       asg,
			b:       smt.NewBuilder(),
			nodeVal: map[*isle.TermNode]smt.TermID{},
			varVal:  map[string]smt.TermID{},
		}
		va, err := el.elabNode(a.LHS, true)
		if err != nil {
			return nil, err
		}
		vb, err := el.elabNode(bLHS, true)
		if err != nil {
			return nil, err
		}
		var extra []smt.TermID
		for _, il := range append(append([]*isle.IfLet{}, a.IfLets...), bIfLets...) {
			ev, err := el.elabNode(il.Expr, true)
			if err != nil {
				return nil, err
			}
			pv, err := el.elabNode(il.Pat, true)
			if err != nil {
				return nil, err
			}
			if il.Pat.Kind != isle.NWildcard {
				extra = append(extra, el.b.Eq(pv, ev))
			}
		}
		for _, name := range ra.lhsVars {
			if t, ok := el.varVal[name]; ok && el.b.SortOf(t).Kind == smt.KindBV {
				el.inputs = append(el.inputs, t)
			}
		}
		// Matching the same subject: unified positions are equal, and so
		// are the two pattern roots.
		extra = append(extra, el.b.Eq(va, vb))
		for _, p := range pairs {
			x, err := el.elabNode(p[0], true)
			if err != nil {
				return nil, err
			}
			y, err := el.elabNode(p[1], true)
			if err != nil {
				return nil, err
			}
			extra = append(extra, el.b.Eq(x, y))
		}
		conj := make([]smt.TermID, 0, len(el.pLHS)+len(el.rLHS)+len(extra))
		conj = append(conj, el.pLHS...)
		conj = append(conj, el.rLHS...)
		conj = append(conj, extra...)
		out, err := smt.Check(el.b, conj, v.solverConfig())
		if err != nil {
			return nil, err
		}
		switch out.Status {
		case smt.SatRes:
			if a.Prio != b.Prio {
				res.Kind = OverlapPrioritized
			} else {
				res.Kind = OverlapAmbiguous
			}
			res.Witness = map[string]smt.Value{}
			for _, name := range ra.lhsVars {
				if strings.HasSuffix(name, "|b") {
					continue
				}
				if t, ok := el.varVal[name]; ok {
					if val, ok := out.Model.Value(el.b.Term(t).Name); ok {
						res.Witness[name] = val
					}
				}
			}
			return res, nil
		case smt.Unknown:
			res.Kind = OverlapUnknown
		}
	}
	return res, nil
}

// FindAmbiguousOverlaps scans every same-root rule pair of the program
// and returns the pairs that overlap (prioritized overlaps are normal in
// ISLE; ambiguous ones are reported first).
func (v *Verifier) FindAmbiguousOverlaps() ([]*OverlapResult, error) {
	byHead := map[string][]*isle.Rule{}
	for _, r := range v.Prog.Rules {
		byHead[r.LHS.Name] = append(byHead[r.LHS.Name], r)
	}
	heads := make([]string, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	sort.Strings(heads)
	var out []*OverlapResult
	for _, h := range heads {
		rules := byHead[h]
		for i := 0; i < len(rules); i++ {
			for j := i + 1; j < len(rules); j++ {
				r, err := v.CheckOverlap(rules[i], rules[j])
				if err != nil {
					return nil, err
				}
				if r.Kind != OverlapNone {
					out = append(out, r)
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Kind == OverlapAmbiguous && out[j].Kind != OverlapAmbiguous
	})
	return out, nil
}

// renameVars clones a pattern tree, appending suffix to every variable
// name.
func renameVars(n *isle.TermNode, suffix string) *isle.TermNode {
	cp := *n
	if n.Kind == isle.NVar {
		cp.Name = n.Name + suffix
	}
	if len(n.Args) > 0 {
		cp.Args = make([]*isle.TermNode, len(n.Args))
		for i, a := range n.Args {
			cp.Args[i] = renameVars(a, suffix)
		}
	}
	return &cp
}

// structuralHead reports whether a pattern head is structural: matching
// requires the subject to be built by exactly this constructor (IR
// instructions and nullary enum constructors), so two different
// structural heads can never match the same subject. Extractor-style
// terms (has_type, fits_in_*, imm12_*, ...) are predicates on the
// subject and overlap semantically.
func structuralHead(p *isle.Program, name string) bool {
	d := p.Decls[name]
	if d == nil {
		return false
	}
	return d.Ret == "Inst" || len(d.Params) == 0
}

// constExtractor reports whether a pattern head is a constant extractor:
// a Value-matching term whose bindings are all fixed-width immediates
// (imm12_from_value, u64_from_value, ...). At runtime these only match
// literal iconst values, so against any other structural constructor the
// patterns are disjoint.
func constExtractor(p *isle.Program, name string) bool {
	d := p.Decls[name]
	if d == nil || d.Ret != "Value" || len(d.Params) == 0 {
		return false
	}
	for _, param := range d.Params {
		m, ok := p.Models[param]
		if !ok || m.Kind != isle.MBV || m.Width == 0 {
			return false
		}
	}
	return true
}

// unwrapConv strips identity conversion terms (inst_result, put_in_reg)
// that the typechecker inserts, so unification compares the underlying
// constructors.
func unwrapConv(p *isle.Program, n *isle.TermNode) *isle.TermNode {
	for n.Kind == isle.NApply {
		if _, isConv := converterTerms(p)[n.Name]; !isConv {
			return n
		}
		n = n.Args[0]
	}
	return n
}

func converterTerms(p *isle.Program) map[string]bool {
	out := map[string]bool{}
	for _, term := range p.Converters {
		out[term] = true
	}
	return out
}

// unifyTrees computes the value-equality obligations for two patterns to
// match one common subject. It returns disjoint=true when the patterns
// are statically incompatible. The analysis is conservative in one
// direction only: it may report an overlap that runtime matching would
// not exhibit (when value semantics cannot express syntactic facts), but
// never reports disjointness for patterns that share an input.
func unifyTrees(p *isle.Program, a, b *isle.TermNode) (pairs [][2]*isle.TermNode, disjoint bool) {
	a = unwrapConv(p, a)
	b = unwrapConv(p, b)
	switch {
	case a.Kind == isle.NWildcard || b.Kind == isle.NWildcard:
		return nil, false
	case a.Kind == isle.NVar || b.Kind == isle.NVar:
		return [][2]*isle.TermNode{{a, b}}, false
	case a.Kind == isle.NConst && b.Kind == isle.NConst:
		return nil, a.IntVal != b.IntVal
	case a.Kind == isle.NApply && b.Kind == isle.NApply:
		if a.Name == b.Name && len(a.Args) == len(b.Args) {
			for i := range a.Args {
				sub, dis := unifyTrees(p, a.Args[i], b.Args[i])
				if dis {
					return nil, true
				}
				pairs = append(pairs, sub...)
			}
			return pairs, false
		}
		if structuralHead(p, a.Name) && structuralHead(p, b.Name) {
			return nil, true
		}
		// A constant extractor only matches literal constants, so it is
		// statically disjoint from any non-iconst constructor.
		if constExtractor(p, a.Name) && structuralHead(p, b.Name) && b.Name != "iconst" {
			return nil, true
		}
		if constExtractor(p, b.Name) && structuralHead(p, a.Name) && a.Name != "iconst" {
			return nil, true
		}
		// Otherwise both constrain the same subject value; the solver
		// decides.
		return [][2]*isle.TermNode{{a, b}}, false
	default:
		// Constant against application (e.g. a literal type versus a
		// fits_in guard): semantic.
		return [][2]*isle.TermNode{{a, b}}, false
	}
}
