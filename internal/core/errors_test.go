package core

import (
	"strings"
	"testing"
	"time"

	"crocus/internal/isle"
	"crocus/internal/smt"
)

// buildProgram parses without the shared prelude, for malformed-input
// scenarios.
func buildProgram(t *testing.T, srcs ...string) *isle.Program {
	t.Helper()
	p := isle.NewProgram()
	for i, src := range srcs {
		if err := p.ParseFile("t.isle", src); err != nil {
			t.Fatalf("parse %d: %v", i, err)
		}
	}
	if err := p.Typecheck(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMissingAnnotationIsError: verifying a rule whose term lacks a spec
// must produce a diagnostic naming the term (the gradual-annotation
// workflow of §3.1 relies on this).
func TestMissingAnnotationIsError(t *testing.T) {
	p := buildProgram(t, `
		(type Inst (primitive Inst))
		(type InstOutput (primitive InstOutput))
		(type Value (primitive Value))
		(model Value (bv))
		(model Inst (bv))
		(model InstOutput (bv))
		(decl lower (Inst) InstOutput)
		(spec (lower arg) (provide (= result arg)))
		(decl mystery (Value Value) Inst)
		(rule r (lower (mystery x y)) (lower (mystery x x)))`)
	v := New(p, Options{Timeout: time.Second})
	_, err := v.VerifyRule(p.Rules[0])
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("err = %v, want missing-spec diagnostic", err)
	}
}

// TestKindConflictInAnnotation: using an integer-typed value as a
// bitvector operand must fail typing, not crash.
func TestKindConflictInAnnotation(t *testing.T) {
	p := buildProgram(t, `
		(type Inst (primitive Inst))
		(type InstOutput (primitive InstOutput))
		(type Type (primitive Type))
		(model Type Int)
		(model Inst (bv))
		(model InstOutput (bv))
		(decl lower (Inst) InstOutput)
		(spec (lower arg) (provide (= result arg)))
		(decl weird (Type) Inst)
		(spec (weird ty) (provide (= result (rotl ty ty))))
		(rule r (lower (weird x)) (lower (weird x)))`)
	v := New(p, Options{Timeout: time.Second})
	rr, err := v.VerifyRule(p.Rules[0])
	// Either a typing diagnostic or inapplicability is acceptable; a
	// success would mean the conflict was silently ignored.
	if err == nil && rr.Outcome() == OutcomeSuccess {
		t.Fatalf("kind conflict not detected: %v", rr.Outcome())
	}
}

// TestInstantiationArityMismatch is a hard error (malformed corpus).
func TestInstantiationArityMismatch(t *testing.T) {
	v := buildVerifier(t, `
		(rule r (lower (iadd x y)) (a64_add 64 x y))`, Options{})
	bad := &isle.Sig{
		Args: []isle.MType{{Kind: isle.MBV, Width: 8}},
		Ret:  isle.MType{Kind: isle.MBV, Width: 8},
	}
	if _, err := v.VerifyInstantiation(v.Prog.Rules[0], bad); err == nil {
		t.Fatal("expected arity-mismatch error")
	}
}

// TestCustomAssumptions: Eq. 3's A_n — extra assumptions can make an
// otherwise-failing rule verify (the paper uses this to encode priority
// shadowing).
func TestCustomAssumptions(t *testing.T) {
	src := `
		(rule half_right
			(lower (has_type 64 (iadd x y)))
			(a64_add 64 x (a64_add 64 y y)))`
	v := buildVerifier(t, src, Options{})
	rr := verifyOnly(t, v, "half_right")
	if rr.Insts[3].Outcome != OutcomeFailure {
		t.Fatalf("unassumed: %v", rr.Insts[3].Outcome)
	}
	// Assume y = 0: then x + (y+y) = x + y.
	v.Opts.Custom = map[string]*CustomVC{
		"half_right": {
			Assumptions: func(ctx *VCContext) ([]smt.TermID, error) {
				y, ok := ctx.Var("y")
				if !ok {
					t.Fatal("no variable y in context")
				}
				return []smt.TermID{ctx.B.Eq(y, ctx.B.BVConst(0, 64))}, nil
			},
		},
	}
	rr = verifyOnly(t, v, "half_right")
	if rr.Insts[3].Outcome != OutcomeSuccess {
		t.Fatalf("assumed y=0: %v", rr.Insts[3].Outcome)
	}
}

// TestInterpretUnknownVariable and width-mismatch handling.
func TestInterpretErrors(t *testing.T) {
	v := buildVerifier(t, `
		(rule r (lower (has_type ty (iadd x y))) (a64_add ty x y))`, Options{})
	rule := v.Prog.Rules[0]
	sigs := v.Sigs(rule)
	if _, err := v.Interpret(rule, sigs[0], map[string]smt.Value{
		"zz": smt.BVValue(1, 8),
	}); err == nil {
		t.Fatal("expected unknown-variable error")
	}
	// A value at the wrong width for the chosen instantiation does not
	// match that assignment (and there is no other): no match, no error.
	res, err := v.Interpret(rule, sigs[0], map[string]smt.Value{
		"x": smt.BVValue(1, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches {
		t.Fatal("16-bit input cannot match the 8-bit instantiation")
	}
}

// TestInterpretIntInputRejected: integer-typed variables are chosen by
// the instantiation, not by input values.
func TestInterpretIntInputRejected(t *testing.T) {
	v := buildVerifier(t, `
		(rule r (lower (has_type ty (iadd x y))) (a64_add ty x y))`, Options{})
	rule := v.Prog.Rules[0]
	if _, err := v.Interpret(rule, v.Sigs(rule)[0], map[string]smt.Value{
		"ty": smt.IntValue(8),
	}); err == nil {
		t.Fatal("expected integer-variable rejection")
	}
}

// TestCounterexampleRendersLets: the renderer must handle let bindings
// and wildcards.
func TestCounterexampleRendersLets(t *testing.T) {
	src := `
		(rule letbad
			(lower (has_type 64 (iadd x _)))
			(let ((tmp Reg (a64_add 64 x x)))
				(a64_add 64 tmp tmp)))`
	v := buildVerifier(t, src, Options{})
	rr := verifyOnly(t, v, "letbad")
	if rr.Insts[3].Outcome != OutcomeFailure {
		t.Fatalf("outcome = %v", rr.Insts[3].Outcome)
	}
	rendered := rr.Insts[3].Counterexample.Rendered
	if !strings.Contains(rendered, "(let ((tmp Reg") || !strings.Contains(rendered, "_") {
		t.Fatalf("rendered:\n%s", rendered)
	}
}

// TestSigsForUninstantiatedRule: rules without an instantiated root get
// the single unconstrained instantiation.
func TestSigsForUninstantiatedRule(t *testing.T) {
	p := buildProgram(t, `
		(type Value (primitive Value))
		(model Value (bv))
		(decl simplify (Value) Value)
		(spec (simplify arg) (provide (= result arg)))
		(decl noop (Value) Value)
		(spec (noop x) (provide (= result x)))
		(rule r (simplify (noop x)) x)`)
	v := New(p, Options{Timeout: 5 * time.Second})
	sigs := v.Sigs(p.Rules[0])
	if len(sigs) != 1 || sigs[0] != nil {
		t.Fatalf("sigs = %v", sigs)
	}
	rr, err := v.VerifyRule(p.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	// One unconstrained instantiation, width enumerated: identity holds.
	if rr.Outcome() != OutcomeSuccess {
		t.Fatalf("outcome = %v", rr.Outcome())
	}
	if rr.Insts[0].Assignments < 4 {
		t.Fatalf("expected width enumeration, got %d assignments", rr.Insts[0].Assignments)
	}
}

// TestRuleResultAggregation covers the outcome-ordering logic.
func TestRuleResultAggregation(t *testing.T) {
	mk := func(outs ...Outcome) *RuleResult {
		rr := &RuleResult{Rule: &isle.Rule{Name: "x"}}
		for _, o := range outs {
			rr.Insts = append(rr.Insts, InstOutcome{Outcome: o})
		}
		return rr
	}
	if mk(OutcomeSuccess, OutcomeFailure).Outcome() != OutcomeFailure {
		t.Fatal("failure dominates")
	}
	if mk(OutcomeSuccess, OutcomeTimeout).Outcome() != OutcomeTimeout {
		t.Fatal("timeout beats success")
	}
	if mk(OutcomeInapplicable, OutcomeInapplicable).Outcome() != OutcomeInapplicable {
		t.Fatal("all-inapplicable")
	}
	if mk(OutcomeInapplicable, OutcomeSuccess).Outcome() != OutcomeSuccess {
		t.Fatal("success with inapplicable")
	}
	if mk(OutcomeSuccess, OutcomeTimeout).AllSuccess() {
		t.Fatal("AllSuccess with a timeout")
	}
	if mk(OutcomeInapplicable).AllSuccess() {
		t.Fatal("AllSuccess needs at least one success")
	}
}
