package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"crocus/internal/obs"
	"crocus/internal/smt"
)

// obsTestRules mixes outcomes: a correct rule and the paper's broken
// 64-bit-only rotate (fails at narrow widths).
const obsTestRules = `
	(rule iadd_base
		(lower (has_type ty (iadd x y)))
		(a64_add ty x y))
	(rule broken_rotr
		(lower (has_type ty (rotr x y)))
		(a64_rotr_64 x y))`

// TestTracedVerdictsUnchanged is the observability safety contract: the
// same sweep run with and without a tracer must produce identical
// verdicts, and the traced run must cover the pipeline's span taxonomy.
func TestTracedVerdictsUnchanged(t *testing.T) {
	collect := func(ctx context.Context) [][]Outcome {
		v := buildVerifier(t, obsTestRules, Options{})
		rs, err := v.VerifyAllContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]Outcome, len(rs))
		for i, rr := range rs {
			out[i] = outcomes(rr)
		}
		return out
	}

	plain := collect(context.Background())
	tr := obs.New()
	traced := collect(obs.WithTracer(context.Background(), tr))

	if len(plain) != len(traced) {
		t.Fatalf("rule counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if len(plain[i]) != len(traced[i]) {
			t.Fatalf("rule %d: instantiation counts differ", i)
		}
		for j := range plain[i] {
			if plain[i][j] != traced[i][j] {
				t.Errorf("rule %d inst %d: verdict %v with tracer, %v without",
					i, j, traced[i][j], plain[i][j])
			}
		}
	}

	phases := map[string]int{}
	for _, ev := range tr.Events() {
		phases[ev.Name]++
	}
	for _, want := range []string{
		obs.PhaseRule, obs.PhaseMonomorphize, obs.PhaseElaborate,
		obs.PhaseAttempt, obs.PhaseQueryApp, obs.PhaseQueryEquiv,
		obs.PhaseSolveEqs, obs.PhaseSimplify, obs.PhaseUnits,
		obs.PhaseBlast, obs.PhaseSolve,
	} {
		if phases[want] == 0 {
			t.Errorf("no %s span recorded (phases: %v)", want, phases)
		}
	}
	// Spans must be scoped to the rules they verified.
	scopes := map[string]bool{}
	for _, ev := range tr.Events() {
		scopes[ev.Scope] = true
	}
	if !scopes["iadd_base"] || !scopes["broken_rotr"] {
		t.Errorf("rule scopes missing: %v", scopes)
	}
}

// TestFlightAndProfilerVerdictsUnchanged extends the safety contract to
// the telemetry seams: the same sweep run through a ring-mode tracer
// with a flight collecting every span (the daemon's always-on
// configuration), then folded into a rule-hardness profile, must leave
// verdicts byte-identical to the plain run.
func TestFlightAndProfilerVerdictsUnchanged(t *testing.T) {
	collect := func(ctx context.Context) ([]*RuleResult, [][]Outcome) {
		v := buildVerifier(t, obsTestRules, Options{})
		rs, err := v.VerifyAllContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]Outcome, len(rs))
		for i, rr := range rs {
			out[i] = outcomes(rr)
		}
		return rs, out
	}

	_, plain := collect(context.Background())

	tr := obs.New()
	tr.SetRing(256)
	fr := obs.NewFlightRecorder(4, 0)
	fl := fr.StartFlight("sweep-1")
	ctx := obs.WithFlight(obs.WithTracer(context.Background(), tr), fl)
	rs, flighted := collect(ctx)

	if len(plain) != len(flighted) {
		t.Fatalf("rule counts differ: %d vs %d", len(plain), len(flighted))
	}
	for i := range plain {
		for j := range plain[i] {
			if plain[i][j] != flighted[i][j] {
				t.Errorf("rule %d inst %d: verdict %v with flight, %v without",
					i, j, flighted[i][j], plain[i][j])
			}
		}
	}

	// The flight must actually have collected the sweep's spans (this is
	// not a disabled-path run), and promoting + profiling must not touch
	// the results either.
	fl.Promote(obs.FlightTimeout)
	if !fr.Finish(fl, time.Millisecond, 200) {
		t.Fatal("explicitly promoted flight was not retained")
	}
	exs := fr.Exemplars()
	if len(exs) != 1 || len(exs[0].Spans) == 0 {
		t.Fatalf("exemplar missing spans: %+v", exs)
	}

	prof := ProfileRules(rs)
	if prof.TotalInsts == 0 || len(prof.Rules) != len(rs) {
		t.Fatalf("profile did not aggregate the sweep: %+v", prof)
	}
	for i, rr := range rs {
		got := outcomes(rr)
		for j := range got {
			if got[j] != flighted[i][j] {
				t.Errorf("rule %d inst %d: verdict mutated by profiler: %v vs %v",
					i, j, got[j], flighted[i][j])
			}
		}
	}
}

// TestCacheProbeMetrics checks the vcache probe span/counters: a cold
// run records misses, a warm re-run records hits.
func TestCacheProbeMetrics(t *testing.T) {
	dir := t.TempDir()
	run := func() *obs.Tracer {
		tr := obs.New()
		v := buildVerifier(t, `
			(rule iadd_base
				(lower (has_type ty (iadd x y)))
				(a64_add ty x y))`, Options{CacheDir: dir})
		if _, err := v.VerifyAllContext(obs.WithTracer(context.Background(), tr)); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cold := run().Registry().Counters()
	if cold["vcache.miss"] == 0 || cold["vcache.hit"] != 0 {
		t.Errorf("cold run counters = %v, want misses only", cold)
	}
	warm := run().Registry().Counters()
	if warm["vcache.hit"] == 0 || warm["vcache.miss"] != 0 {
		t.Errorf("warm run counters = %v, want hits only", warm)
	}
}

// TestEscalationSpans checks that ladder retries emit solve.escalation
// spans and the escalation counter.
func TestEscalationSpans(t *testing.T) {
	tr := obs.New()
	// Structural hashing collapses iadd_base's gate-identical sides to a
	// constant circuit (zero search, so budget 1 is never exceeded);
	// disable it so the first attempt genuinely times out and escalates.
	v := buildVerifier(t, `
		(rule iadd_base
			(lower (has_type ty (iadd x y)))
			(a64_add ty x y))`,
		Options{PropagationBudget: 1, RetryBudgets: []int64{0}, NoStructHash: true})
	if _, err := v.VerifyAllContext(obs.WithTracer(context.Background(), tr)); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range tr.Events() {
		if ev.Name == obs.PhaseEscalation {
			n++
		}
	}
	if n == 0 {
		t.Error("no solve.escalation spans recorded")
	}
	if tr.Registry().Counter("escalation.attempts").Value() == 0 {
		t.Error("escalation.attempts counter not incremented")
	}
}

func TestSolverStatsAddAndString(t *testing.T) {
	var s SolverStats
	s.Add(SolverStats{Propagations: 10, Conflicts: 2, Decisions: 5, Queries: 1})
	s.Add(SolverStats{Propagations: 5, Conflicts: 1, Decisions: 3, Queries: 2})
	want := SolverStats{Propagations: 15, Conflicts: 3, Decisions: 8, Queries: 3}
	if s != want {
		t.Errorf("Add: got %+v, want %+v", s, want)
	}

	s.addResult(smt.Result{Propagations: 100, Conflicts: 10, Decisions: 20})
	if s.Propagations != 115 || s.Conflicts != 13 || s.Decisions != 28 || s.Queries != 4 {
		t.Errorf("addResult: got %+v", s)
	}

	line := s.String()
	if !strings.Contains(line, "props=115") || !strings.Contains(line, "conflicts=13") ||
		!strings.Contains(line, "decisions=28") || !strings.Contains(line, "queries=4") {
		t.Errorf("String() = %q", line)
	}
}
