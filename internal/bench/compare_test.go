package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func basePhase() Phase {
	return Phase{
		WallNS: 2_000_000_000, WallSeconds: 2.0,
		Rules: 96, Insts: 381,
		Outcomes: map[string]int{"success": 252, "inapplicable": 108, "failure": 4, "timeout": 17},
	}
}

func baseReport() *Report {
	r := &Report{
		Corpus:          "aarch64",
		TimeoutNS:       1_000_000_000,
		Budget:          200_000,
		Fresh:           basePhase(),
		IncrementalCold: basePhase(),
		IncrementalWarm: basePhase(),
		VerdictsMatch:   true,
	}
	return r
}

func TestCompareIdenticalPasses(t *testing.T) {
	if regs := Compare(baseReport(), baseReport(), DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("identical reports should pass, got %v", regs)
	}
}

func TestCompareWithinToleranceHasNoRegressions(t *testing.T) {
	cur := baseReport()
	// 1.9x wall (under 2x), one extra timeout traded against success
	// (under the delta of 2): all within tolerance.
	cur.IncrementalCold.WallNS = 3_800_000_000
	cur.IncrementalCold.WallSeconds = 3.8
	cur.IncrementalCold.Outcomes["timeout"] = 18
	cur.IncrementalCold.Outcomes["success"] = 251
	if regs := Compare(baseReport(), cur, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("in-tolerance drift should pass, got %v", regs)
	}
	// Fewer timeouts than baseline is an improvement, never a regression.
	cur = baseReport()
	cur.Fresh.Outcomes["timeout"] = 0
	cur.Fresh.Outcomes["success"] = 269
	if regs := Compare(baseReport(), cur, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("fewer timeouts should pass, got %v", regs)
	}
}

func TestCompareFlagsWallRegression(t *testing.T) {
	cur := baseReport()
	cur.IncrementalCold.WallNS = 5_000_000_000 // 2.5x
	cur.IncrementalCold.WallSeconds = 5.0
	regs := Compare(baseReport(), cur, DefaultTolerances())
	if len(regs) != 1 || regs[0].Phase != "incremental_cold" || regs[0].Metric != "wall_ns" {
		t.Fatalf("want one incremental_cold/wall_ns regression, got %v", regs)
	}
	// Disabling the wall check tolerates it.
	tol := DefaultTolerances()
	tol.MaxWallRatio = 0
	if regs := Compare(baseReport(), cur, tol); len(regs) != 0 {
		t.Fatalf("MaxWallRatio 0 should disable wall checks, got %v", regs)
	}
}

func TestCompareFlagsTimeoutRegression(t *testing.T) {
	cur := baseReport()
	cur.Fresh.Outcomes["timeout"] = 25 // +8 > delta 2
	cur.Fresh.Outcomes["success"] = 244
	regs := Compare(baseReport(), cur, DefaultTolerances())
	if len(regs) != 1 || regs[0].Metric != "outcomes.timeout" {
		t.Fatalf("want outcomes.timeout regression, got %v", regs)
	}
}

func TestCompareFlagsVerdictDrift(t *testing.T) {
	// A failure count change is a correctness event, not noise: zero
	// tolerance.
	cur := baseReport()
	cur.IncrementalCold.Outcomes["failure"] = 5
	cur.IncrementalCold.Outcomes["success"] = 251
	regs := Compare(baseReport(), cur, DefaultTolerances())
	found := false
	for _, r := range regs {
		if r.Metric == "outcomes.failure" {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure drift not flagged: %v", regs)
	}

	// Lost instantiations are flagged even with all tolerances disabled.
	cur = baseReport()
	cur.Fresh.Insts = 380
	cur.Fresh.Outcomes["success"] = 251
	tol := Tolerances{MaxWallRatio: 0, MaxTimeoutDelta: -1}
	regs = Compare(baseReport(), cur, tol)
	if len(regs) == 0 {
		t.Fatal("lost instantiation not flagged")
	}

	// success+timeout shrinking together (verdicts leaking into
	// inapplicable/error would be caught by those exact checks; this
	// guards the aggregate).
	cur = baseReport()
	cur.Fresh.Outcomes["success"] = 250
	regs = Compare(baseReport(), cur, DefaultTolerances())
	if len(regs) != 1 || regs[0].Metric != "outcomes.success" {
		t.Fatalf("want outcomes.success regression, got %v", regs)
	}
}

func TestCompareFlagsExperimentMismatch(t *testing.T) {
	cur := baseReport()
	cur.Budget = 20_000
	regs := Compare(baseReport(), cur, DefaultTolerances())
	if len(regs) == 0 || regs[0].Metric != "propagation_budget" {
		t.Fatalf("budget mismatch not flagged: %v", regs)
	}
	cur = baseReport()
	cur.VerdictsMatch = false
	regs = Compare(baseReport(), cur, DefaultTolerances())
	if len(regs) != 1 || regs[0].Metric != "verdicts_match" {
		t.Fatalf("verdict mismatch not flagged: %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := baseReport()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Corpus != r.Corpus || got.Budget != r.Budget || got.Fresh.Insts != r.Fresh.Insts {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if regs := Compare(r, got, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("round-tripped report should compare clean: %v", regs)
	}
}

func TestRenderRegressions(t *testing.T) {
	regs := []Regression{
		{Phase: "fresh", Metric: "wall_ns", Detail: "too slow"},
		{Phase: "incremental_cold", Metric: "outcomes.timeout", Detail: "too many"},
	}
	out := RenderRegressions(regs)
	if !strings.Contains(out, "REGRESSION fresh/wall_ns") ||
		!strings.Contains(out, "REGRESSION incremental_cold/outcomes.timeout") {
		t.Fatalf("render = %q", out)
	}
}

func TestCompatibleVerdicts(t *testing.T) {
	if !CompatibleVerdicts([]string{"success", "timeout"}, []string{"timeout", "success"}) {
		t.Fatal("timeout flips should be compatible")
	}
	if CompatibleVerdicts([]string{"success"}, []string{"failure"}) {
		t.Fatal("success vs failure must be incompatible")
	}
	if CompatibleVerdicts([]string{"success"}, []string{"success", "success"}) {
		t.Fatal("length mismatch must be incompatible")
	}
}
