package bench

import (
	"fmt"
	"sort"
)

// Tolerances are the perf-regression gate's per-metric thresholds.
// Verdict-shape metrics (rule/instantiation counts, failure and
// inapplicable outcomes) have no tolerance: they are deterministic, so
// any drift is a regression (or an un-regenerated baseline). Timeouts
// and wall time are resources, so they get slack.
type Tolerances struct {
	// MaxWallRatio bounds current wall time per phase at
	// MaxWallRatio * baseline. <= 0 disables wall-time checks (useful
	// when the baseline came from different hardware).
	MaxWallRatio float64
	// MaxTimeoutDelta bounds how many additional timeouts per phase the
	// current run may show over the baseline. Fewer timeouts is never a
	// regression. Negative disables the check.
	MaxTimeoutDelta int
}

// DefaultTolerances are the CI gate's settings: 2x wall-time headroom
// (runner noise) and up to 2 extra timeouts per phase (wall-clock
// scheduling jitter near the deadline; the deterministic
// propagation-budget timeouts cannot drift at all).
func DefaultTolerances() Tolerances {
	return Tolerances{MaxWallRatio: 2.0, MaxTimeoutDelta: 2}
}

// Regression is one threshold violation found by Compare.
type Regression struct {
	Phase  string // "fresh", "incremental_cold", "incremental_warm_cache"
	Metric string
	Detail string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s/%s: %s", r.Phase, r.Metric, r.Detail)
}

// Compare checks a current report against a committed baseline and
// returns every threshold violation (empty = gate passes). The two
// reports must describe the same experiment — same corpus, timeout, and
// propagation budget — otherwise the comparison itself is flagged.
func Compare(baseline, current *Report, tol Tolerances) []Regression {
	var regs []Regression
	flag := func(phase, metric, format string, args ...any) {
		regs = append(regs, Regression{Phase: phase, Metric: metric, Detail: fmt.Sprintf(format, args...)})
	}

	if baseline.Corpus != current.Corpus {
		flag("report", "corpus", "baseline %q vs current %q", baseline.Corpus, current.Corpus)
	}
	if baseline.TimeoutNS != current.TimeoutNS {
		flag("report", "timeout_ns", "baseline %d vs current %d (not the same experiment)", baseline.TimeoutNS, current.TimeoutNS)
	}
	if baseline.Budget != current.Budget {
		flag("report", "propagation_budget", "baseline %d vs current %d (not the same experiment)", baseline.Budget, current.Budget)
	}
	if !current.VerdictsMatch {
		flag("report", "verdicts_match", "pipelines disagree on verdicts in the current run")
	}

	phases := []struct {
		name      string
		base, cur *Phase
	}{
		{"fresh", &baseline.Fresh, &current.Fresh},
		{"incremental_cold", &baseline.IncrementalCold, &current.IncrementalCold},
		{"incremental_warm_cache", &baseline.IncrementalWarm, &current.IncrementalWarm},
	}
	for _, p := range phases {
		comparePhase(p.name, p.base, p.cur, tol, flag)
	}
	return regs
}

func comparePhase(name string, base, cur *Phase, tol Tolerances, flag func(phase, metric, format string, args ...any)) {
	if base.Rules != cur.Rules {
		flag(name, "rules", "baseline %d vs current %d", base.Rules, cur.Rules)
	}
	if base.Insts != cur.Insts {
		flag(name, "instantiations", "baseline %d vs current %d", base.Insts, cur.Insts)
	}

	// Decided verdict counts: failures and inapplicables are
	// deterministic and must match exactly. Success may only shrink by
	// what moved into the timeout column (covered by the timeout check);
	// a success count that shrinks beyond that is a verdict regression.
	for _, outcome := range []string{"failure", "inapplicable", "error"} {
		if b, c := base.Outcomes[outcome], cur.Outcomes[outcome]; b != c {
			flag(name, "outcomes."+outcome, "baseline %d vs current %d", b, c)
		}
	}
	bt, ct := base.Outcomes["timeout"], cur.Outcomes["timeout"]
	if tol.MaxTimeoutDelta >= 0 && ct > bt+tol.MaxTimeoutDelta {
		flag(name, "outcomes.timeout", "baseline %d vs current %d (max delta %d)", bt, ct, tol.MaxTimeoutDelta)
	}
	if bs, cs := base.Outcomes["success"], cur.Outcomes["success"]; cs+ct < bs+bt {
		flag(name, "outcomes.success", "success+timeout shrank: baseline %d+%d vs current %d+%d", bs, bt, cs, ct)
	}

	if tol.MaxWallRatio > 0 && base.WallNS > 0 {
		ratio := float64(cur.WallNS) / float64(base.WallNS)
		if ratio > tol.MaxWallRatio {
			flag(name, "wall_ns", "baseline %.3fs vs current %.3fs (%.2fx > %.2fx allowed)",
				base.WallSeconds, cur.WallSeconds, ratio, tol.MaxWallRatio)
		}
	}
}

// RenderRegressions formats the violations one per line, stably sorted.
func RenderRegressions(regs []Regression) string {
	lines := make([]string, 0, len(regs))
	for _, r := range regs {
		lines = append(lines, "  REGRESSION "+r.String()+"\n")
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l
	}
	return out
}
