// Package bench runs the repo's pinned benchmark sweeps and renders
// them in the BENCH_*.json schema the repo has carried since PR 2: the
// same corpus swept three ways (per-query fresh solvers, the
// incremental session pipeline cold, and a warm vcache replay), plus
// the cold sweep's observability breakdown and a cross-sweep verdict
// compatibility check.
//
// The package exists so two binaries can share one definition: `crocus
// -bench-json` (the ad-hoc measurement tool) and `crocus-bench` (the
// CI perf-regression gate, which additionally compares a fresh report
// against a committed baseline — see compare.go).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"crocus/internal/core"
	"crocus/internal/isle"
	"crocus/internal/obs"
)

// Phase summarizes one full-corpus verification sweep.
type Phase struct {
	WallNS      int64          `json:"wall_ns"`
	WallSeconds float64        `json:"wall_seconds"`
	Rules       int            `json:"rules"`
	Insts       int            `json:"instantiations"`
	Outcomes    map[string]int `json:"outcomes"`
	Cached      int            `json:"cached"`
	// Aggregate SAT statistics across every unit of the sweep.
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Queries      int64 `json:"queries"`
}

// Obs is the report's observability section, collected by tracing the
// incremental cold sweep: where the pipeline's time goes by phase, and
// which simplify rules carry the load.
type Obs struct {
	// PhaseTotalsNS sums span wall time per phase name across the sweep.
	PhaseTotalsNS map[string]int64 `json:"phase_totals_ns"`
	// SimplifyRuleHits counts rewrite-rule firings ("simplify.rule.*"
	// counters, trimmed of the prefix).
	SimplifyRuleHits map[string]int64 `json:"simplify_rule_hits"`
	// Counters is the rest of the metrics registry (cache probes, blast
	// sizes, SAT search totals).
	Counters map[string]int64 `json:"counters"`
}

// Report is the schema of the BENCH_*.json artifact.
type Report struct {
	Corpus    string `json:"corpus"`
	TimeoutNS int64  `json:"timeout_ns"`
	// Budget records the deterministic propagation budget the sweeps ran
	// under (0 = wall-clock only). The regression gate pins it so timeout
	// counts are machine-independent.
	Budget             int64   `json:"propagation_budget,omitempty"`
	Parallel           int     `json:"parallel"`
	Fresh              Phase   `json:"fresh"`
	IncrementalCold    Phase   `json:"incremental_cold"`
	IncrementalWarm    Phase   `json:"incremental_warm_cache"`
	SpeedupColdVsFresh float64 `json:"speedup_cold_vs_fresh"`
	SpeedupWarmVsFresh float64 `json:"speedup_warm_vs_fresh"`
	// VerdictsMatch reports that no instantiation was decided
	// contradictorily across the three sweeps. Timeouts are resource
	// artifacts, not verdicts: a query near the wall-clock deadline can
	// finish in one pipeline and not the other, so success/timeout flips
	// are compatible, while success vs failure is a real disagreement.
	VerdictsMatch bool `json:"verdicts_match"`
	// The eval_* fields record the cross-build acceptance measurement:
	// cold full-corpus `crocus-eval -exp table1` wall time under the
	// pre-PR build vs this build, measured back-to-back on the same idle
	// machine and injected via -bench-eval-base-ns / -bench-eval-new-ns
	// (two binaries cannot share one process, so the report carries the
	// externally timed numbers alongside its own in-process sweeps).
	EvalBaselineWallNS int64   `json:"eval_pre_pr_wall_ns,omitempty"`
	EvalNewWallNS      int64   `json:"eval_this_pr_wall_ns,omitempty"`
	EvalImprovement    float64 `json:"eval_improvement,omitempty"`
	// The sched_* fields record the unit-scheduler acceptance measurement:
	// cold full-corpus wall time at the same -parallel under the pre-PR
	// rule-partitioned scheduler, externally timed with the pre-PR binary
	// and injected via -bench-sched-base-ns.
	SchedBaselineColdNS int64   `json:"sched_pre_pr_cold_wall_ns,omitempty"`
	SchedImprovement    float64 `json:"sched_improvement,omitempty"`
	// Obs is the incremental cold sweep's phase/rule breakdown (the same
	// data `crocus -metrics` prints, in machine-readable form).
	Obs Obs `json:"obs"`
}

// Run sweeps the program under the three pipelines and assembles the
// report. The cold incremental sweep runs traced (feeding the obs
// section); its tracer is returned so callers can export the Chrome
// trace as a CI artifact.
func Run(prog *isle.Program, base core.Options, corpusName string) (*Report, *obs.Tracer, error) {
	cacheDir, err := os.MkdirTemp("", "crocus-bench-cache-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(cacheDir)

	report := &Report{
		Corpus:    corpusName,
		TimeoutNS: base.Timeout.Nanoseconds(),
		Budget:    base.PropagationBudget,
		Parallel:  base.Parallelism,
	}

	fresh := base
	fresh.FreshSolvers = true
	fresh.CacheDir = ""
	freshPh, freshV, err := sweep(prog, fresh, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("fresh sweep: %w", err)
	}
	report.Fresh = freshPh

	// The cold incremental sweep — the pipeline the repo actually ships —
	// runs traced, feeding the report's obs section. The overhead is part
	// of its measured wall time, which is fair: the artifact documents
	// what a traced run costs.
	cold := base
	cold.FreshSolvers = false
	cold.CacheDir = cacheDir
	tr := obs.New()
	coldPh, coldV, err := sweep(prog, cold, tr)
	if err != nil {
		return nil, nil, fmt.Errorf("incremental sweep: %w", err)
	}
	report.IncrementalCold = coldPh
	report.Obs = CollectObs(tr)

	warmPh, warmV, err := sweep(prog, cold, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("warm sweep: %w", err)
	}
	report.IncrementalWarm = warmPh

	report.VerdictsMatch = CompatibleVerdicts(freshV, coldV) && CompatibleVerdicts(coldV, warmV)
	if coldPh.WallNS > 0 {
		report.SpeedupColdVsFresh = float64(freshPh.WallNS) / float64(coldPh.WallNS)
	}
	if warmPh.WallNS > 0 {
		report.SpeedupWarmVsFresh = float64(freshPh.WallNS) / float64(warmPh.WallNS)
	}
	return report, tr, nil
}

// sweep runs one full verification pass and folds it into a Phase plus
// the per-instantiation verdict sequence.
func sweep(prog *isle.Program, opts core.Options, tr *obs.Tracer) (Phase, []string, error) {
	v := core.New(prog, opts)
	ctx := obs.WithTracer(context.Background(), tr)
	start := time.Now()
	rs, err := v.VerifyAllContext(ctx)
	wall := time.Since(start)
	if cerr := v.CloseCache(); cerr != nil && err == nil {
		err = fmt.Errorf("cache flush: %w", cerr)
	}
	if err != nil {
		return Phase{}, nil, err
	}
	ph := Phase{
		WallNS:      wall.Nanoseconds(),
		WallSeconds: wall.Seconds(),
		Rules:       len(rs),
		Outcomes:    map[string]int{},
	}
	var verdicts []string
	for _, rr := range rs {
		for _, io := range rr.Insts {
			ph.Insts++
			ph.Outcomes[io.Outcome.String()]++
			if io.Cached {
				ph.Cached++
			}
			ph.Propagations += io.Stats.Propagations
			ph.Conflicts += io.Stats.Conflicts
			ph.Decisions += io.Stats.Decisions
			ph.Queries += io.Stats.Queries
			verdicts = append(verdicts, io.Outcome.String())
		}
	}
	return ph, verdicts, nil
}

// CollectObs flattens a traced sweep's tracer into the report's obs
// section: per-phase wall-time totals, simplify-rule hit counts, and
// the remaining counters.
func CollectObs(tr *obs.Tracer) Obs {
	out := Obs{
		PhaseTotalsNS:    map[string]int64{},
		SimplifyRuleHits: map[string]int64{},
		Counters:         map[string]int64{},
	}
	for phase, d := range tr.PhaseBreakdown().PhaseTotals() {
		out.PhaseTotalsNS[phase] = d.Nanoseconds()
	}
	const rulePrefix = "simplify.rule."
	for name, v := range tr.Registry().Counters() {
		if rule, ok := strings.CutPrefix(name, rulePrefix); ok {
			out.SimplifyRuleHits[rule] = v
		} else {
			out.Counters[name] = v
		}
	}
	return out
}

// CompatibleVerdicts compares per-instantiation outcome sequences.
// Decided outcomes must match exactly; "timeout" is compatible with
// anything (the sweeps run against a wall clock, so queries near the
// deadline legitimately decide in one pipeline and not another).
func CompatibleVerdicts(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && a[i] != "timeout" && b[i] != "timeout" {
			return false
		}
	}
	return true
}

// WriteFile writes the report as indented JSON, trailing newline
// included (the BENCH_*.json house style).
func (r *Report) WriteFile(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// ReadFile loads a committed BENCH_*.json baseline.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
